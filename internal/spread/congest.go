package spread

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
)

// Message kinds for the CONGEST gossip (namespaced away from the protocol
// package's kinds; gossip runs in its own network).
const (
	kindPush  uint8 = 1 // Value = token id, also an implicit pull request
	kindReply uint8 = 2 // Value = token id, answering last round's push
)

// gossipProc is one node of the CONGEST push–pull: each round it contacts a
// uniformly random neighbor with one token id (push) and answers every
// contact from the previous round with one token id (pull). Every message
// is one O(log n)-bit token id, so the engine's bandwidth enforcement is
// the paper's footnote-10 regime, where the bound becomes Õ(τ(β,ε) + n/β).
type gossipProc struct {
	id   int
	bits int32
	held *bitset.Set
	list []int32 // held token ids, for O(1) uniform sampling
}

func (p *gossipProc) add(tok int32) bool {
	if p.held.Contains(int(tok)) {
		return false
	}
	p.held.Add(int(tok))
	p.list = append(p.list, tok)
	return true
}

func (p *gossipProc) random(ctx *congest.Context) int32 {
	return p.list[ctx.Rand().Intn(len(p.list))]
}

func (p *gossipProc) Init(ctx *congest.Context) {}

func (p *gossipProc) Step(ctx *congest.Context) {
	// Ingest everything delivered this round; answer pushes.
	for _, m := range ctx.Inbox() {
		p.add(int32(m.Value))
		if m.Kind == kindPush {
			ctx.Send(int(m.From), congest.Message{Kind: kindReply, Value: int64(p.random(ctx)), Bits: p.bits})
		}
	}
	// Push one random token to one random neighbor.
	row := ctx.Neighbors()
	v := row[ctx.Rand().Intn(len(row))]
	ctx.Send(int(v), congest.Message{Kind: kindPush, Value: int64(p.random(ctx)), Bits: p.bits})
}

// RunCongest executes push–pull under the CONGEST constraint: one token id
// per message (paper §4, footnote 10). The run stops as soon as
// (·, β)-partial information spreading holds, or at MaxRounds. Unlike Run
// (the LOCAL-model engine), this uses the congest engine with full
// per-edge bandwidth enforcement.
func RunCongest(g *graph.Graph, cfg Config) (*Result, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("spread: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return nil, graph.ErrNotConnected
	}
	if cfg.Beta < 1 {
		return nil, fmt.Errorf("spread: need β ≥ 1, got %g", cfg.Beta)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64*n + 1000
	}
	if cfg.FixedRounds > 0 {
		maxRounds = cfg.FixedRounds
	}
	target := int(float64(n)/cfg.Beta + 0.999999)
	if target < 1 {
		target = 1
	}
	msgBits := int32(bits.Len(uint(n-1)) + 8)

	procs := make([]*gossipProc, n)
	// reach[t] = #nodes holding token t; maintained by the monitor, which
	// runs while the engine is quiescent. counted[u] tracks how much of
	// node u's (append-only) token list has been folded into reach.
	reach := make([]int, n)
	counted := make([]int, n)
	res := &Result{RoundsToPartial: -1, RoundsToFull: -1}

	engCfg := congest.Config{
		Seed:      cfg.Seed,
		MaxRounds: maxRounds + 1,
		OnRound: func(round int) bool {
			res.Rounds = round
			minHeld := n + 1
			for u := 0; u < n; u++ {
				p := procs[u]
				for ; counted[u] < len(p.list); counted[u]++ {
					reach[p.list[counted[u]]]++
				}
				if h := len(p.list); h < minHeld {
					minHeld = h
				}
			}
			minReach := n + 1
			for _, r := range reach {
				if r < minReach {
					minReach = r
				}
			}
			if res.RoundsToPartial < 0 && minHeld >= target && minReach >= target {
				res.RoundsToPartial = round
				if cfg.StopAtPartial && cfg.FixedRounds == 0 {
					return true
				}
			}
			if minHeld == n && minReach == n {
				res.RoundsToFull = round
				return true
			}
			return round >= maxRounds
		},
	}
	net, err := congest.NewNetwork(g, engCfg)
	if err != nil {
		return nil, err
	}
	stats, err := net.Run(func(id int) congest.Process {
		p := &gossipProc{id: id, bits: msgBits, held: bitset.New(n)}
		p.add(int32(id))
		procs[id] = p
		return p
	})
	if err != nil {
		return nil, err
	}
	res.Messages = stats.Messages
	minHeld, minReach := n, n
	for u := 0; u < n; u++ {
		if h := len(procs[u].list); h < minHeld {
			minHeld = h
		}
	}
	for _, r := range reach {
		if r < minReach {
			minReach = r
		}
	}
	res.MinTokensPerNode = minHeld
	res.MinNodesPerToken = minReach
	if cfg.FixedRounds == 0 && res.RoundsToPartial < 0 {
		return res, fmt.Errorf("spread: CONGEST partial spreading not reached in %d rounds", maxRounds)
	}
	return res, nil
}
