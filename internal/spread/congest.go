package spread

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
)

// Message kinds for the CONGEST gossip (namespaced away from the protocol
// package's kinds; gossip runs in its own network).
const (
	kindPush  uint8 = 1 // Value = token id, also an implicit pull request
	kindReply uint8 = 2 // Value = token id, answering last round's push
)

// gossipProc is one node of the CONGEST push–pull: each round it contacts a
// uniformly random neighbor with one token id (push) and answers every
// contact from the previous round with one token id (pull). Every message
// is one O(log n)-bit token id, so the engine's bandwidth enforcement is
// the paper's footnote-10 regime, where the bound becomes Õ(τ(β,ε) + n/β).
type gossipProc struct {
	id   int
	bits int32
	held *bitset.Set
	list []int32 // held token ids, for O(1) uniform sampling
}

func (p *gossipProc) add(tok int32) bool {
	if p.held.Contains(int(tok)) {
		return false
	}
	p.held.Add(int(tok))
	p.list = append(p.list, tok)
	return true
}

func (p *gossipProc) random(ctx *congest.Context) int32 {
	return p.list[ctx.Rand().Intn(len(p.list))]
}

func (p *gossipProc) Init(ctx *congest.Context) {}

func (p *gossipProc) Step(ctx *congest.Context) {
	// Ingest everything delivered this round; answer pushes.
	for _, m := range ctx.Inbox() {
		p.add(int32(m.Value))
		if m.Kind == kindPush {
			ctx.Send(int(m.From), congest.Message{Kind: kindReply, Value: int64(p.random(ctx)), Bits: p.bits})
		}
	}
	// Push one random token to one random neighbor (SendNbr: the engine
	// addresses the edge by adjacency-row position, no lookup).
	ctx.SendNbr(ctx.Rand().Intn(ctx.Degree()), congest.Message{Kind: kindPush, Value: int64(p.random(ctx)), Bits: p.bits})
}

// RunCongest executes push–pull under the CONGEST constraint: one token id
// per message (paper §4, footnote 10). The run stops as soon as
// (·, β)-partial information spreading holds, or at MaxRounds. Unlike Run
// (the LOCAL-model simulator) and RunOnEngine (the LOCAL-model engine run),
// this uses the congest engine with full per-edge bandwidth enforcement.
func RunCongest(g *graph.Graph, cfg Config) (*Result, error) {
	maxRounds, target, err := engineParams(g, cfg)
	if err != nil {
		return nil, err
	}
	n := g.N()
	msgBits := int32(bits.Len(uint(n-1)) + 8)
	slab := make([]gossipProc, n)
	res := &Result{RoundsToPartial: -1, RoundsToFull: -1}
	mo := newMonitor(n, target, maxRounds, cfg, res, func(u int) []int32 { return slab[u].list })
	net, err := congest.NewNetwork(g, congest.Config{
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		MaxRounds: maxRounds + 1,
		OnRound:   mo.onRound,
	})
	if err != nil {
		return nil, err
	}
	stats, err := net.Run(func(id int) congest.Process {
		p := &slab[id]
		*p = gossipProc{id: id, bits: msgBits, held: bitset.New(n)}
		p.add(int32(id))
		return p
	})
	if err != nil {
		return nil, err
	}
	return mo.finish(stats)
}
