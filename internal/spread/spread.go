package spread

import (
	"errors"
	"fmt"
	mbits "math/bits"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/walkkernel"
)

// Config controls a push–pull run.
type Config struct {
	// Beta is the spreading parameter: targets are n/β tokens per node and
	// n/β nodes per token.
	Beta float64
	// MaxRounds aborts the run (default 64·n).
	MaxRounds int
	// Seed drives all random neighbor choices.
	Seed int64
	// StopAtPartial stops as soon as (·, β)-partial spreading holds.
	// Otherwise the run continues to full information spreading.
	StopAtPartial bool
	// FixedRounds, when positive, runs exactly this many rounds and then
	// reports whatever was achieved (the Theorem 3 termination rule).
	FixedRounds int
	// Workers sets the engine parallelism for the engine-backed runs
	// (RunCongest, RunOnEngine) and the snapshot-phase parallelism of the
	// direct simulator (Run); zero means GOMAXPROCS. It never changes
	// results.
	Workers int
}

// Result reports a push–pull run.
type Result struct {
	// RoundsToPartial is the first round at which (·, β)-partial spreading
	// held (-1 if never achieved within the run).
	RoundsToPartial int
	// RoundsToFull is the first round at which every node had every token
	// (-1 if the run stopped earlier).
	RoundsToFull int
	// Rounds is the total number of rounds executed.
	Rounds int
	// MinTokensPerNode and MinNodesPerToken describe the final state.
	MinTokensPerNode int
	MinNodesPerToken int
	// Messages counts the pairwise exchanges performed.
	Messages int64
	// Stats carries the congest engine's counters for the engine-backed
	// runs (RunCongest, RunOnEngine); nil for the direct simulator.
	Stats *congest.Stats
}

// state is the in-memory gossip simulator. Push–pull needs no bandwidth
// accounting (LOCAL model), so a direct simulation is both faithful and
// fast; the congest engine is reserved for the CONGEST algorithms (and for
// RunOnEngine, the engine-backed variant with honest payload accounting).
// The snapshot and choice buffers are allocated once and reused every
// round, and set merges run word-level, so the steady-state round loop is
// allocation-free.
type state struct {
	g      *graph.Graph
	tokens []*bitset.Set // tokens[u] = set of token ids node u holds
	snap   []*bitset.Set // reused pre-round snapshots of tokens
	choice []int32       // reused per-round neighbor choices
	reach  []int         // reach[t] = #nodes holding token t
	held   []int         // held[u] = #tokens node u holds
	rng    *rand.Rand

	// Snapshot-phase parallelism: the per-node CopyFrom is pure, so the
	// O(n²/64) words copied each round fan out over the shared walkkernel
	// pool without changing any result. The merge phase stays serial (the
	// chosen pairs conflict on both endpoints).
	workers int
	snapJ   snapJob
	snapWG  sync.WaitGroup
}

// snapJob copies the pre-round token snapshots for a node range.
type snapJob struct{ st *state }

func (j *snapJob) RunRange(lo, hi int32) {
	for u := lo; u < hi; u++ {
		j.st.snap[u].CopyFrom(j.st.tokens[u])
	}
}

// snapParallelMin is the node count below which the snapshot phase stays on
// one goroutine: under it the pool dispatch costs more than the copies.
const snapParallelMin = 2048

func newState(g *graph.Graph, seed int64, workers int) *state {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < snapParallelMin {
		workers = 1
	}
	st := &state{
		g:       g,
		tokens:  make([]*bitset.Set, n),
		snap:    make([]*bitset.Set, n),
		choice:  make([]int32, n),
		reach:   make([]int, n),
		held:    make([]int, n),
		rng:     rand.New(rand.NewSource(seed)),
		workers: workers,
	}
	st.snapJ.st = st
	for u := 0; u < n; u++ {
		st.tokens[u] = bitset.New(n)
		st.tokens[u].Add(u)
		st.snap[u] = bitset.New(n)
		st.reach[u] = 1
		st.held[u] = 1
	}
	return st
}

// round performs one synchronous push–pull round: every node picks a random
// neighbor; all chosen pairs merge token sets (both directions). Exchanges
// are applied simultaneously, as in the standard analysis: each pair merges
// the sets as they were at the start of the round.
func (st *state) round() int64 {
	n := st.g.N()
	for u := 0; u < n; u++ {
		row := st.g.Neighbors(u)
		st.choice[u] = row[st.rng.Intn(len(row))]
	}
	// Snapshot the pre-round sets so all exchanges are simultaneous: each
	// pair merges the sets as they stood at the start of the round.
	walkkernel.ParallelFor(&st.snapWG, &st.snapJ, n, 0, st.workers)
	var msgs int64
	for u := 0; u < n; u++ {
		v := int(st.choice[u])
		msgs += 2
		st.acquire(u, st.snap[v])
		st.acquire(v, st.snap[u])
	}
	return msgs
}

// acquire merges src's snapshot into node dst, maintaining reach counts.
// The merge is word-level: only genuinely new bits pay a per-token cost.
func (st *state) acquire(dst int, src *bitset.Set) {
	tok := st.tokens[dst]
	for wi, nw := 0, src.Words(); wi < nw; wi++ {
		w := src.Word(wi) &^ tok.Word(wi)
		if w == 0 {
			continue
		}
		tok.OrWord(wi, w)
		st.held[dst] += mbits.OnesCount64(w)
		base := wi << 6
		for w != 0 {
			st.reach[base+mbits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

func (st *state) minHeld() int {
	m := st.held[0]
	for _, h := range st.held[1:] {
		if h < m {
			m = h
		}
	}
	return m
}

func (st *state) minReach() int {
	m := st.reach[0]
	for _, r := range st.reach[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// Collected extends Result with the final per-node token sets, for
// applications (e.g. max coverage) that consume what was spread.
type Collected struct {
	Result *Result
	// Known[u] is the set of token ids node u ended up holding.
	Known []*bitset.Set
}

// RunCollecting is Run, additionally returning the final token sets.
func RunCollecting(g *graph.Graph, cfg Config) (*Collected, error) {
	res, st, err := run(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Collected{Result: res, Known: st.tokens}, nil
}

// Run executes push–pull per the config.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	res, _, err := run(g, cfg)
	return res, err
}

func run(g *graph.Graph, cfg Config) (*Result, *state, error) {
	n := g.N()
	if n < 2 {
		return nil, nil, errors.New("spread: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return nil, nil, graph.ErrNotConnected
	}
	if cfg.Beta < 1 && cfg.FixedRounds == 0 {
		return nil, nil, fmt.Errorf("spread: need β ≥ 1, got %g", cfg.Beta)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64 * n
	}
	if cfg.FixedRounds > 0 {
		maxRounds = cfg.FixedRounds
	}
	target := n
	if cfg.Beta >= 1 {
		target = int(float64(n)/cfg.Beta + 0.999999)
		if target < 1 {
			target = 1
		}
	}
	st := newState(g, cfg.Seed, cfg.Workers)
	res := &Result{RoundsToPartial: -1, RoundsToFull: -1}
	if target <= 1 {
		res.RoundsToPartial = 0
	}
	for r := 1; r <= maxRounds; r++ {
		res.Messages += st.round()
		res.Rounds = r
		minHeld, minReach := st.minHeld(), st.minReach()
		if res.RoundsToPartial < 0 && minHeld >= target && minReach >= target {
			res.RoundsToPartial = r
			if cfg.StopAtPartial && cfg.FixedRounds == 0 {
				break
			}
		}
		if minHeld == n && minReach == n {
			res.RoundsToFull = r
			break
		}
	}
	res.MinTokensPerNode = st.minHeld()
	res.MinNodesPerToken = st.minReach()
	if cfg.FixedRounds == 0 && !cfg.StopAtPartial && res.RoundsToFull < 0 {
		return res, st, fmt.Errorf("spread: full spreading not reached in %d rounds", maxRounds)
	}
	if cfg.FixedRounds == 0 && cfg.StopAtPartial && res.RoundsToPartial < 0 {
		return res, st, fmt.Errorf("spread: partial spreading not reached in %d rounds", maxRounds)
	}
	return res, st, nil
}

// LeaderElection runs push–pull where the payload is the minimum node id
// seen so far (the classical min-id leader election over gossip; an
// application the paper cites for partial information spreading [4, 5]).
// It returns the number of rounds until every node knows the global
// minimum id.
func LeaderElection(g *graph.Graph, seed int64, maxRounds int) (int, error) {
	n := g.N()
	if n < 2 {
		return 0, errors.New("spread: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return 0, graph.ErrNotConnected
	}
	if maxRounds == 0 {
		maxRounds = 64 * n
	}
	rng := rand.New(rand.NewSource(seed))
	min := make([]int32, n)
	for u := range min {
		min[u] = int32(u)
	}
	next := make([]int32, n)
	for r := 1; r <= maxRounds; r++ {
		copy(next, min)
		for u := 0; u < n; u++ {
			row := g.Neighbors(u)
			v := row[rng.Intn(len(row))]
			if min[v] < next[u] {
				next[u] = min[v]
			}
			if min[u] < next[v] {
				next[v] = min[u]
			}
		}
		min, next = next, min
		done := true
		for _, m := range min {
			if m != 0 {
				done = false
				break
			}
		}
		if done {
			return r, nil
		}
	}
	return 0, fmt.Errorf("spread: leader election incomplete after %d rounds", maxRounds)
}
