package spread

import (
	"testing"

	"repro/internal/gen"
)

func TestRunCongestReachesPartial(t *testing.T) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCongest(g, Config{Beta: 8, Seed: 2, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToPartial <= 0 {
		t.Fatal("CONGEST gossip never reached partial spreading")
	}
	target := g.N() / 8
	if res.MinTokensPerNode < target || res.MinNodesPerToken < target {
		t.Errorf("final state below target: held=%d reach=%d", res.MinTokensPerNode, res.MinNodesPerToken)
	}
}

// TestCongestSlowerThanLocal: the bandwidth constraint must cost real
// rounds — CONGEST partial spreading is strictly slower than LOCAL
// (footnote 10's n/β term).
func TestCongestSlowerThanLocal(t *testing.T) {
	g, err := gen.Barbell(8, 32) // n/β = 32 tokens must arrive one at a time
	if err != nil {
		t.Fatal(err)
	}
	cg, err := RunCongest(g, Config{Beta: 8, Seed: 3, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Run(g, Config{Beta: 8, Seed: 3, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if cg.RoundsToPartial <= 2*lc.RoundsToPartial {
		t.Errorf("CONGEST (%d rounds) should be well above LOCAL (%d rounds) at n/β=32",
			cg.RoundsToPartial, lc.RoundsToPartial)
	}
	// And it must be at least the trivial information-theoretic bound:
	// a node needs ≥ n/β tokens and starts with 1.
	if cg.RoundsToPartial < 8 {
		t.Errorf("CONGEST rounds %d below any plausible token-arrival bound", cg.RoundsToPartial)
	}
}

func TestRunCongestFixedRounds(t *testing.T) {
	g, _ := gen.Complete(32)
	res, err := RunCongest(g, Config{Beta: 4, Seed: 4, FixedRounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 30 {
		t.Errorf("fixed run overran: %d rounds", res.Rounds)
	}
	if res.MinTokensPerNode < 8 {
		t.Errorf("30 rounds on K32 should collect ≥ 8 tokens, got %d", res.MinTokensPerNode)
	}
}

func TestRunCongestValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	if _, err := RunCongest(g, Config{Beta: 0.2}); err == nil {
		t.Error("β < 1 accepted")
	}
}

func TestRunCongestDeterministic(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	a, err := RunCongest(g, Config{Beta: 4, Seed: 5, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCongest(g, Config{Beta: 4, Seed: 5, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.RoundsToPartial != b.RoundsToPartial || a.Messages != b.Messages {
		t.Error("same seed, different CONGEST gossip outcome")
	}
}
