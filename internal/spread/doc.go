// Package spread implements §4 of the paper: partial information spreading
// via the synchronous push–pull gossip mechanism in the LOCAL model.
//
// Every node starts with one distinct token. In each round every node picks
// a uniformly random neighbor and the pair exchanges all tokens they hold
// (push and pull). (δ, β)-partial information spreading (Definition 3) is
// achieved when every token has reached at least n/β nodes AND every node
// holds at least n/β distinct tokens. Theorem 3 shows push–pull achieves
// this in O(τ(β,ε)·log n) rounds w.h.p., which also yields the termination
// rule: run for Θ(τ log n) rounds, with τ computed by the algorithms in
// internal/core.
//
// Token sets are bitsets and exchanges are unions, which models the LOCAL
// assumption of unbounded per-round messages; the congest engine's LOCAL
// mode carries them with honest accounting of the (unbounded) bits. Three
// runners are provided: the direct simulator (Run), the engine-backed
// RunOnEngine with payload slabs and parallel stepping, and the footnote-10
// CONGEST variant (RunCongest) restricted to one O(log n)-bit token id per
// message. All are seeded and reproducible; the engine-backed runner is
// additionally deterministic for every worker count, like everything on the
// round engine.
package spread
