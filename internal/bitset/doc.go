// Package bitset provides a dense fixed-capacity bitset used to represent
// token sets in the push–pull information-spreading engine (§4 of the
// paper): node u's set of received tokens is a bitset over token ids, and a
// push–pull exchange is a word-level union.
//
// The representation is a flat []uint64 with value semantics and no hidden
// state, so set operations are deterministic and allocation-free once a set
// is sized; internal/spread merges whole words (OrWord/Words) to keep the
// gossip hot path branch-free.
package bitset
