package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-capacity bitset over [0, Cap()).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity n bits.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the capacity in bits.
func (s *Set) Cap() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionWith sets s = s ∪ o. Capacities must match.
func (s *Set) UnionWith(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ o. Capacities must match.
func (s *Set) IntersectWith(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Equal reports whether two sets have identical capacity and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with o's contents without allocating. Capacities
// must match.
func (s *Set) CopyFrom(o *Set) {
	s.sameCap(o)
	copy(s.words, o.words)
}

// Words returns the number of backing 64-bit words.
func (s *Set) Words() int { return len(s.words) }

// Word returns the i-th backing word: bits [64i, 64i+64). Together with
// OrWord it lets hot paths (the gossip engine's set merges) run word-level
// operations without per-bit calls.
func (s *Set) Word(i int) uint64 { return s.words[i] }

// OrWord ORs w into the i-th backing word. The caller must not set bits at
// or beyond Cap().
func (s *Set) OrWord(i int, w uint64) { s.words[i] |= w }

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Fill sets every bit in [0, Cap()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := s.n & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << uint(rem)) - 1
	}
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}
