package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	if s.Cap() != 130 || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Errorf("count %d", s.Count())
	}
	if !s.Contains(64) || s.Contains(63) {
		t.Error("contains wrong")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Error("remove failed")
	}
	s.Remove(64) // idempotent
	if s.Count() != 2 {
		t.Error("double remove changed count")
	}
}

func TestBoundsPanic(t *testing.T) {
	s := New(10)
	for _, idx := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %d did not panic", idx)
				}
			}()
			s.Add(idx)
		}()
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(1)
	a.Add(50)
	b.Add(50)
	b.Add(99)
	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 3 || !u.Contains(1) || !u.Contains(99) {
		t.Error("union wrong")
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 1 || !i.Contains(50) {
		t.Error("intersect wrong")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity mismatch did not panic")
		}
	}()
	New(10).UnionWith(New(20))
}

func TestFillAndClear(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 200} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d): count %d", n, s.Count())
		}
		s.Clear()
		if s.Count() != 0 {
			t.Errorf("Clear(%d): count %d", n, s.Count())
		}
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 127, 199}
	for _, v := range want {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := New(50), New(50)
	a.Add(7)
	b.Add(7)
	if !a.Equal(b) {
		t.Error("equal sets reported different")
	}
	b.Add(8)
	if a.Equal(b) {
		t.Error("different sets reported equal")
	}
	if a.Equal(New(51)) {
		t.Error("different capacities reported equal")
	}
}

// Property: a bitset agrees with a reference map implementation under a
// random operation sequence.
func TestAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := make(map[int]bool)
		for i := 0; i < 200; i++ {
			v := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(v)
				ref[v] = true
			case 1:
				s.Remove(v)
				delete(ref, v)
			case 2:
				if s.Contains(v) != ref[v] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !ref[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish algebra — |A ∪ B| + |A ∩ B| = |A| + |B|.
func TestInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		a, b := New(n), New(n)
		for i := 0; i < n/2; i++ {
			a.Add(rng.Intn(n))
			b.Add(rng.Intn(n))
		}
		u := a.Clone()
		u.UnionWith(b)
		x := a.Clone()
		x.IntersectWith(b)
		return u.Count()+x.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
