package spec

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
)

func TestGraphSpecBuildMatchesGenerators(t *testing.T) {
	rng := func() *rand.Rand { return rand.New(rand.NewSource(7)) }
	wantExp, err := gen.RandomRegular(32, 4, rng())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		spec GraphSpec
		want func() (interface{ N() int }, error)
	}{
		{GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}, func() (interface{ N() int }, error) { return gen.RingOfCliques(4, 5) }},
		{GraphSpec{Family: "barbell", Blocks: 3, K: 4}, func() (interface{ N() int }, error) { return gen.Barbell(3, 4) }},
		{GraphSpec{Family: "torus", Dim: 4}, func() (interface{ N() int }, error) { return gen.Torus(4, 4) }},
		{GraphSpec{Family: "torus", Rows: 3, Cols: 5}, func() (interface{ N() int }, error) { return gen.Torus(3, 5) }},
		{GraphSpec{Family: "path", N: 9}, func() (interface{ N() int }, error) { return gen.Path(9) }},
		{GraphSpec{Family: "hypercube", Dim: 3}, func() (interface{ N() int }, error) { return gen.Hypercube(3) }},
		{GraphSpec{Family: "expander", N: 32, D: 4, Seed: 7}, func() (interface{ N() int }, error) { return wantExp, nil }},
	}
	for _, c := range cases {
		g, err := c.spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Key(), err)
		}
		want, err := c.want()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != want.N() {
			t.Errorf("%s: built n=%d, generator n=%d", c.spec.Key(), g.N(), want.N())
		}
		if g.Name() == "" {
			t.Errorf("%s: built graph has no name", c.spec.Key())
		}
	}
}

func TestGraphSpecBuildDeterministic(t *testing.T) {
	s := GraphSpec{Family: "expander", N: 24, D: 3, Seed: 42}
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expander spec built two different graphs from one seed")
	}
}

func TestGraphSpecKeyNormalization(t *testing.T) {
	// Irrelevant fields must not fragment the key.
	a := GraphSpec{Family: "torus", Dim: 4, Seed: 99, K: 7, P: 0.5}
	b := GraphSpec{Family: "torus", Rows: 4, Cols: 4}
	if a.Key() != b.Key() {
		t.Fatalf("equal torus specs render different keys:\n  %s\n  %s", a.Key(), b.Key())
	}
	// The seed matters exactly for the randomized families.
	e1 := GraphSpec{Family: "expander", N: 16, D: 4, Seed: 1}
	e2 := GraphSpec{Family: "expander", N: 16, D: 4, Seed: 2}
	if e1.Key() == e2.Key() {
		t.Fatal("expander specs with different seeds share a key")
	}
	// Build-time defaults fold into the key: a lollipop with the Bridge=K
	// default spelled out builds the same graph, so it must share the key.
	l1 := GraphSpec{Family: "lollipop", K: 16}
	l2 := GraphSpec{Family: "lollipop", K: 16, Bridge: 16}
	if l1.Key() != l2.Key() {
		t.Fatalf("lollipop default-bridge specs render different keys:\n  %s\n  %s", l1.Key(), l2.Key())
	}
	ga, err := l1.Build()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := l2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ga, gb) {
		t.Fatal("lollipop default-bridge specs build different graphs")
	}
}

func TestGraphSpecValidate(t *testing.T) {
	if err := (GraphSpec{Family: "moebius"}).Validate(); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := (GraphSpec{Family: "moebius"}).Build(); err == nil {
		t.Fatal("unknown family built")
	}
	if err := (GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphSpecJSONRoundTrip(t *testing.T) {
	in := GraphSpec{Family: "expander", N: 64, D: 6, Seed: 3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out GraphSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the spec: %+v -> %+v", in, out)
	}
}

func TestTaskSpecJSONRoundTrip(t *testing.T) {
	in := TaskSpec{
		Kind: KindSweep, Beta: 4, Eps: 0.05, Lazy: true, Mode: "mixing",
		Seed: 9, SweepWorkers: 2, Sample: 8, DeadlineMS: 1500,
		Churn: &ChurnSpec{Model: "markov", Rate: 0.1, On: 0.5, Seed: 4},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out TaskSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\n  in  %+v\n  out %+v", in, out)
	}
	if in.Key() != out.Key() {
		t.Fatal("round trip changed the canonical key")
	}
}

func TestTaskSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		t    TaskSpec
		ok   bool
	}{
		{"known kind", TaskSpec{Kind: KindMixing}, true},
		{"unknown kind", TaskSpec{Kind: "teleport"}, false},
		{"bad eps", TaskSpec{Kind: KindMixing, Eps: 1.5}, false},
		{"dynamic needs churn", TaskSpec{Kind: KindDynamic}, false},
		{"dynamic with churn", TaskSpec{Kind: KindDynamic, Churn: &ChurnSpec{Model: "markov"}}, true},
		{"bad dynamic mode", TaskSpec{Kind: KindDynamic, Mode: "sideways", Churn: &ChurnSpec{Model: "markov"}}, false},
		{"churn on oracle", TaskSpec{Kind: KindOracleMixing, Churn: &ChurnSpec{Model: "markov"}}, false},
		{"bad churn model", TaskSpec{Kind: KindMixing, Churn: &ChurnSpec{Model: "quantum"}}, false},
		{"bad sweep mode", TaskSpec{Kind: KindSweep, Mode: "fast"}, false},
		{"sweep mode mixing", TaskSpec{Kind: KindSweep, Mode: "mixing"}, true},
		{"bad transport", TaskSpec{Kind: KindSpread, Transport: "carrier-pigeon"}, false},
		{"coverage needs instance", TaskSpec{Kind: KindCoverage}, false},
		{"coverage with instance", TaskSpec{Kind: KindCoverage, Coverage: &CoverageSpec{Universe: 10, PerNode: 2, K: 2}}, true},
		{"deadline", TaskSpec{Kind: KindMixing, DeadlineMS: 500}, true},
		{"negative deadline", TaskSpec{Kind: KindMixing, DeadlineMS: -1}, false},
		{"empty sources", TaskSpec{Kind: KindSweep, Sources: []int{}}, false},
		{"nil sources", TaskSpec{Kind: KindSweep}, true},
	}
	for _, c := range cases {
		err := c.t.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestTaskSpecDeadline(t *testing.T) {
	if d := (TaskSpec{DeadlineMS: 250}).Deadline(); d != 250*time.Millisecond {
		t.Fatalf("Deadline() = %v, want 250ms", d)
	}
	if d := (TaskSpec{}).Deadline(); d != 0 {
		t.Fatalf("zero spec has deadline %v", d)
	}
	// Schedule-only: two specs differing only in DeadlineMS (or workers)
	// share one canonical key-modulo-schedule identity is enforced at the
	// service layer; the raw key may differ.
	a := TaskSpec{Kind: KindMixing, Seed: 1}
	b := a
	b.DeadlineMS = 100
	if a.Key() == b.Key() {
		t.Fatal("DeadlineMS missing from the canonical key")
	}
}

func TestKindsAreValid(t *testing.T) {
	seen := map[Kind]bool{}
	for _, k := range Kinds() {
		if seen[k] {
			t.Fatalf("kind %s listed twice", k)
		}
		seen[k] = true
		ts := TaskSpec{Kind: k}
		switch k {
		case KindDynamic:
			ts.Churn = &ChurnSpec{Model: "markov"}
		case KindCoverage:
			ts.Coverage = &CoverageSpec{Universe: 10, PerNode: 2, K: 2}
		}
		if err := ts.Validate(); err != nil {
			t.Errorf("kind %s does not validate: %v", k, err)
		}
	}
}
