// Package spec declares the job layer's request vocabulary: a GraphSpec
// names a generated graph (generator family, parameters, seed) and a
// TaskSpec names one computation over it (task kind, oracle/engine options,
// sweep selection, churn model, coverage instance). Both are plain data —
// they validate, build, and round-trip through JSON, and a GraphSpec
// renders a canonical cache key — so every entry point of the repository
// (the localmix facade, cmd/lmt, cmd/lmtd) can describe work in one shared
// language and internal/service can cache built graphs, walk kernels and
// warm sweep pools across requests keyed by spec alone.
//
// Determinism contract: a GraphSpec builds the same graph every time (the
// randomized families draw from the spec's own Seed), and Key() renders
// only the fields its family consumes, so two specs that build the same
// graph share one cache entry. TaskSpec carries no behavior; the kind
// strings are resolved by internal/service's registry.
package spec
