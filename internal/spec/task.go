package spec

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kind names a registered task family. The strings are the wire values of
// the service API (POST /v1/run) and the registry's lookup keys.
type Kind string

// The built-in task kinds. Each corresponds to exactly one facade entry
// point family of the root localmix package (see internal/service for the
// runner registrations).
const (
	// KindOracleMixing is the centralized exact mixing-time oracle
	// (Definition 1): τ_mix_s(ε) from one source.
	KindOracleMixing Kind = "oracle-mixing"
	// KindOracleLocal is the centralized exact local-mixing oracle
	// (Definition 2): τ_s(β, ε) with a witness set.
	KindOracleLocal Kind = "oracle-local"
	// KindOracleGraphMixing is the batched all-sources centralized mixing
	// time τ_mix(ε) = max_s τ_mix_s(ε).
	KindOracleGraphMixing Kind = "oracle-graph-mixing"
	// KindOracleGraphLocal is the centralized graph-wide local mixing time
	// τ(β, ε) = max_v τ_v(β, ε) over all or sampled sources.
	KindOracleGraphLocal Kind = "oracle-graph-local"
	// KindMixing is the distributed [18]-style mixing-time computation.
	KindMixing Kind = "mixing"
	// KindLocal is the distributed local-mixing computation: Algorithm 2
	// (Theorem 1), or the §3.2 exact variant when Exact is set.
	KindLocal Kind = "local"
	// KindSweep is the parallel multi-source distributed sweep; Mode
	// selects approx, exact, or mixing per-source runs.
	KindSweep Kind = "sweep"
	// KindDynamic is a distributed run on a churned network; Mode selects
	// local (Algorithm 2) or mixing. Requires Churn.
	KindDynamic Kind = "dynamic"
	// KindWalk is the token-forwarding random walk (one hop per round),
	// optionally under churn.
	KindWalk Kind = "walk"
	// KindEstimate is the standalone Algorithm 1 run: the fixed-point
	// length-ℓ walk distribution estimate.
	KindEstimate Kind = "estimate"
	// KindSpread is push–pull gossip (§4); Transport selects the direct
	// LOCAL simulator, the CONGEST variant, or the engine-backed run.
	KindSpread Kind = "spread"
	// KindLeader is min-id leader election over gossip.
	KindLeader Kind = "leader"
	// KindCoverage is distributed maximum coverage via partial spreading.
	KindCoverage Kind = "coverage"
)

// Kinds lists every built-in task kind in registration order.
func Kinds() []Kind {
	return []Kind{
		KindOracleMixing, KindOracleLocal, KindOracleGraphMixing,
		KindOracleGraphLocal, KindMixing, KindLocal, KindSweep,
		KindDynamic, KindWalk, KindEstimate, KindSpread, KindLeader,
		KindCoverage,
	}
}

// DefaultEps is the accuracy parameter applied when a TaskSpec leaves Eps
// zero: the paper's running example ε = 1/8e ≈ 0.046.
const DefaultEps = 1.0 / 21.746

// ChurnSpec selects a deterministic churn model for the distributed kinds
// (see internal/dyngraph). The oblivious models (markov, interval,
// snapshot, cutter, crash) derive every round's decisions from
// (Seed, round) alone; the adaptive adversaries (chaser) additionally read
// the protocol's round-boundary published state — still deterministically,
// so a spec'd dynamic run is reproducible either way.
type ChurnSpec struct {
	// Model is markov, interval, snapshot, chaser, cutter, or crash.
	Model string `json:"model"`
	// Rate is the churn intensity: markov P(on→off); interval, the
	// fraction of non-backbone edges down per window (keep = 1−Rate);
	// crash, the per-vertex per-round crash probability.
	Rate float64 `json:"rate,omitempty"`
	// On is the markov P(off→on) reactivation probability, verbatim:
	// 0 (or omitted) means deactivated edges never come back.
	On float64 `json:"on,omitempty"`
	// Every is the interval resample window, or the snapshot switch
	// period, in rounds. Required ≥ 1 for those models (cmd/lmt supplies
	// its -churnevery flag default of 8).
	Every int `json:"every,omitempty"`
	// Snapshots is the rotating-sample count for the snapshot model
	// (0 = 3).
	Snapshots int `json:"snapshots,omitempty"`
	// Degree is the snapshot model's random-regular sample degree (0 = 4).
	Degree int `json:"degree,omitempty"`
	// Budget is the adversary's per-round edge-cut budget for the chaser
	// and cutter models (0 = a toothless adversary that cuts nothing).
	Budget int `json:"budget,omitempty"`
	// Down is the crash model's outage length in rounds; required ≥ 1 for
	// that model (cmd/lmt supplies its -churndown flag default of 8).
	Down int `json:"down,omitempty"`
	// Seed seeds the model; 0 falls back to the task seed.
	Seed int64 `json:"seed,omitempty"`
}

// ClusterSpec routes a distributed task to the service's attached peer
// cluster (internal/cluster) instead of computing it in-process. Like
// Workers it is schedule-only: the cluster determinism contract makes the
// results identical to the in-process run, so the field is excluded from
// derived seeds and result-cache keys.
type ClusterSpec struct {
	// Peers is how many registered peers the run spans (0 = every peer
	// currently registered with the coordinator).
	Peers int `json:"peers,omitempty"`
	// RoundsPerSync batches the coordinator's round barrier: peers
	// speculate up to this many engine rounds per control-plane sync
	// (data frames still flow every round). 0 and 1 both sync every
	// round. Like every Cluster field it is schedule-only: results are
	// byte-identical for any value, and the field never reaches cache
	// keys or derived seeds.
	RoundsPerSync int `json:"roundsPerSync,omitempty"`
}

// CoverageSpec describes the random maximum-coverage instance of a
// coverage task.
type CoverageSpec struct {
	// Universe is the ground-set size.
	Universe int `json:"universe"`
	// PerNode is how many elements each node draws.
	PerNode int `json:"perNode"`
	// K is how many sets to pick.
	K int `json:"k"`
	// Seed draws the instance (independent from the run seed).
	Seed int64 `json:"seed,omitempty"`
	// Engine runs the spreading phase on the round engine.
	Engine bool `json:"engine,omitempty"`
}

// TaskSpec names one computation over a graph: the task kind plus every
// option the corresponding facade entry point exposes. Zero values mean
// "the facade default"; the service's normalization fills the documented
// defaults (Eps, MaxT) before running.
type TaskSpec struct {
	// Kind selects the registered runner.
	Kind Kind `json:"kind"`
	// Source is the source vertex s.
	Source int `json:"source,omitempty"`
	// Beta is the local-mixing set-size parameter β (also the gossip β
	// for spread/coverage).
	Beta float64 `json:"beta,omitempty"`
	// Eps is the accuracy parameter ε ∈ (0,1); 0 selects DefaultEps.
	Eps float64 `json:"eps,omitempty"`
	// Lazy selects the lazy walk (required on bipartite graphs).
	Lazy bool `json:"lazy,omitempty"`
	// Exact selects the §3.2 exact variant for KindLocal.
	Exact bool `json:"exact,omitempty"`
	// Mode refines KindSweep (approx|exact|mixing, default approx) and
	// KindDynamic (local|mixing, default local).
	Mode string `json:"mode,omitempty"`
	// MaxT is the centralized oracles' step budget (0 = 8n²).
	MaxT int `json:"maxT,omitempty"`
	// FullScan disables the oracle's geometric candidate-size grid and
	// examines every admissible set size (the literal Definition 2).
	FullScan bool `json:"fullScan,omitempty"`
	// Steps is the walk length ℓ for KindWalk and KindEstimate.
	Steps int `json:"steps,omitempty"`
	// RetryBudget bounds a KindWalk run's cumulative edge-loss retries
	// under churn (core.WithRetryBudget): stuck holders checkpoint-restart
	// the walk at the source, and exhausting the budget fails the run fast.
	// 0 keeps the unlimited-patience default.
	RetryBudget int `json:"retryBudget,omitempty"`
	// Seed seeds the engine (distributed kinds) or the gossip RNG
	// (spread, leader, coverage). When 0 the service derives a
	// deterministic per-request seed from its base seed and the request
	// content.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the engine/kernel parallelism (0 = GOMAXPROCS). Results
	// never depend on it.
	Workers int `json:"workers,omitempty"`
	// SweepWorkers sizes the sweep worker pool for KindSweep.
	SweepWorkers int `json:"sweepWorkers,omitempty"`
	// DeadlineMS caps the request's wall-clock budget in milliseconds,
	// covering admission queueing and execution; 0 means no deadline. Like
	// Workers it is schedule-only: it can abort a run (with a
	// timeout-tagged error) but never changes a completed result, so it is
	// excluded from derived seeds and result-cache keys.
	DeadlineMS int64 `json:"deadlineMS,omitempty"`
	// Sources lists explicit sweep sources (nil = every vertex).
	Sources []int `json:"sources,omitempty"`
	// Sample sweeps a deterministic random subset of this many sources
	// (the paper's footnote 6 mitigation).
	Sample int `json:"sample,omitempty"`
	// Irregular permits near-regular graphs in the distributed local
	// modes (core.WithIrregular).
	Irregular bool `json:"irregular,omitempty"`
	// C is the fixed-point exponent (core.WithC).
	C int `json:"c,omitempty"`
	// MaxLength caps the searched walk length (core.WithMaxLength).
	MaxLength int `json:"maxLength,omitempty"`
	// MaxRounds caps the engine rounds (distributed kinds) or the gossip
	// rounds (spread, leader).
	MaxRounds int `json:"maxRounds,omitempty"`
	// TieBreakBits enables the §3.1 randomized tie-breaking.
	TieBreakBits int `json:"tieBreakBits,omitempty"`
	// StopAtPartial stops a spread run at (·, β)-partial spreading.
	StopAtPartial bool `json:"stopAtPartial,omitempty"`
	// FixedRounds runs a spread for exactly this many rounds.
	FixedRounds int `json:"fixedRounds,omitempty"`
	// Transport selects the spread implementation: local (direct LOCAL
	// simulator, the default), congest, or engine.
	Transport string `json:"transport,omitempty"`
	// Churn attaches a dynamic-network churn model (distributed kinds;
	// required for KindDynamic).
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Cluster runs the task on the service's attached peer cluster
	// (KindLocal, KindMixing, KindWalk, KindSweep; incompatible with
	// Churn).
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Coverage describes the KindCoverage instance.
	Coverage *CoverageSpec `json:"coverage,omitempty"`
}

// knownKinds is the membership set for validation.
var knownKinds = func() map[Kind]bool {
	m := make(map[Kind]bool, len(Kinds()))
	for _, k := range Kinds() {
		m[k] = true
	}
	return m
}()

// distributedKinds accept a churn model.
var distributedKinds = map[Kind]bool{
	KindMixing: true, KindLocal: true, KindSweep: true,
	KindDynamic: true, KindWalk: true,
}

// ClusterKinds are the task kinds a peer cluster can compute: the
// single-source distributed runs whose state is message-driven end to end
// (so a vertex shard per peer reconstructs the exact single-process
// results), plus the multi-source sweep, which fans source chunks across
// peers with no data plane at all.
var ClusterKinds = map[Kind]bool{
	KindLocal: true, KindMixing: true, KindWalk: true, KindSweep: true,
}

// Validate checks kind membership and the cross-field constraints that do
// not need the graph; parameter ranges are enforced by the runners (and
// ultimately by internal/core and internal/exact), so errors there match
// the direct facade calls byte for byte.
func (t TaskSpec) Validate() error {
	if !knownKinds[t.Kind] {
		return fmt.Errorf("spec: unknown task kind %q (see Kinds)", t.Kind)
	}
	if t.Eps < 0 || t.Eps >= 1 {
		return fmt.Errorf("spec: eps must be in [0,1) (0 = default %g), got %g", DefaultEps, t.Eps)
	}
	if t.DeadlineMS < 0 {
		return fmt.Errorf("spec: deadlineMS must be ≥ 0 (0 = none), got %d", t.DeadlineMS)
	}
	if t.RetryBudget < 0 {
		return fmt.Errorf("spec: retryBudget must be ≥ 0 (0 = unlimited), got %d", t.RetryBudget)
	}
	if t.Sources != nil && len(t.Sources) == 0 {
		// An explicit empty source list has always been a sweep error; reject
		// it here so it cannot share a canonical key (JSON omits empty
		// slices) with the nil "every vertex" form.
		return fmt.Errorf("spec: sources, when present, must list at least one source (omit for every vertex)")
	}
	if t.Churn != nil {
		if !distributedKinds[t.Kind] {
			return fmt.Errorf("spec: kind %s does not accept a churn model", t.Kind)
		}
		switch t.Churn.Model {
		case "markov", "interval", "snapshot", "chaser", "cutter", "crash":
		default:
			return fmt.Errorf("spec: unknown churn model %q (want markov, interval, snapshot, chaser, cutter or crash)", t.Churn.Model)
		}
	}
	if t.Cluster != nil {
		if !ClusterKinds[t.Kind] {
			return fmt.Errorf("spec: kind %s does not distribute across a cluster (want %s, %s, %s or %s)",
				t.Kind, KindLocal, KindMixing, KindWalk, KindSweep)
		}
		if t.Churn != nil {
			return fmt.Errorf("spec: churn models are not supported on a cluster yet")
		}
		// Sweeps fan whole source chunks across peers, so even a single
		// peer is a legitimate (if pointless) cluster; the engine kinds
		// shard one run and need at least two.
		if r := t.Cluster.RoundsPerSync; r < 0 {
			return fmt.Errorf("spec: cluster roundsPerSync must be ≥ 0, got %d", r)
		}
		if p := t.Cluster.Peers; p < 0 || (p == 1 && t.Kind != KindSweep) {
			return fmt.Errorf("spec: cluster peers must be 0 (all registered) or ≥ 2, got %d", p)
		}
	}
	switch t.Kind {
	case KindDynamic:
		if t.Churn == nil {
			return fmt.Errorf("spec: kind %s requires a churn model", t.Kind)
		}
		if m := t.Mode; m != "" && m != "local" && m != "mixing" {
			return fmt.Errorf("spec: dynamic mode must be local or mixing, got %q", m)
		}
	case KindSweep:
		if m := t.Mode; m != "" && m != "approx" && m != "exact" && m != "mixing" {
			return fmt.Errorf("spec: sweep mode must be approx, exact or mixing, got %q", m)
		}
	case KindSpread:
		if tr := t.Transport; tr != "" && tr != "local" && tr != "congest" && tr != "engine" {
			return fmt.Errorf("spec: spread transport must be local, congest or engine, got %q", tr)
		}
	case KindCoverage:
		if t.Coverage == nil {
			return fmt.Errorf("spec: kind %s requires a coverage instance spec", t.Kind)
		}
	}
	return nil
}

// Deadline returns the request's wall-clock budget as a duration
// (0 = none).
func (t TaskSpec) Deadline() time.Duration {
	return time.Duration(t.DeadlineMS) * time.Millisecond
}

// Key renders the canonical JSON of the task — the request-content half of
// the service's per-request derived seeds. Struct field order fixes the
// rendering, so equal specs render equal keys.
func (t TaskSpec) Key() string {
	b, err := json.Marshal(t)
	if err != nil { // unreachable: TaskSpec has no unmarshalable fields
		panic(fmt.Sprintf("spec: task key: %v", err))
	}
	return string(b)
}
