package spec

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// GraphSpec names a generated graph declaratively: a generator family plus
// the parameters that family consumes. It is the unit the service's graph
// cache is keyed by, so equal specs must build equal graphs: every
// randomized family draws only from the spec's Seed.
type GraphSpec struct {
	// Family selects the generator: complete, path, cycle, star, torus,
	// grid, hypercube, lollipop, dumbbell, barbell, ringcliques, expander,
	// ringexpanders, or gnp.
	Family string `json:"family"`
	// N is the vertex count (complete, path, cycle, star, expander, gnp).
	N int `json:"n,omitempty"`
	// K is the clique/block size (lollipop, dumbbell, barbell,
	// ringcliques, ringexpanders).
	K int `json:"k,omitempty"`
	// Blocks is the clique/block count β (barbell, ringcliques,
	// ringexpanders).
	Blocks int `json:"blocks,omitempty"`
	// Bridge is the bridge path length (dumbbell; 0 = single edge, and
	// lollipop's path length, defaulting to K).
	Bridge int `json:"bridge,omitempty"`
	// D is the degree (expander, ringexpanders).
	D int `json:"d,omitempty"`
	// Dim is the hypercube dimension, or the side of a square torus/grid
	// when Rows/Cols are unset.
	Dim int `json:"dim,omitempty"`
	// Rows and Cols size a rectangular torus/grid explicitly.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// P is the edge probability (gnp).
	P float64 `json:"p,omitempty"`
	// Seed drives the randomized families (expander, ringexpanders, gnp).
	Seed int64 `json:"seed,omitempty"`
}

// graphFamilies maps each known family to the spec fields it consumes;
// normalization zeroes every other field so irrelevant parameters cannot
// fragment the cache key.
var graphFamilies = map[string]struct {
	n, k, blocks, bridge, d, dim, p, seed bool
}{
	"complete":      {n: true},
	"path":          {n: true},
	"cycle":         {n: true},
	"star":          {n: true},
	"torus":         {dim: true},
	"grid":          {dim: true},
	"hypercube":     {dim: true},
	"lollipop":      {k: true, bridge: true},
	"dumbbell":      {k: true, bridge: true},
	"barbell":       {k: true, blocks: true},
	"ringcliques":   {k: true, blocks: true},
	"expander":      {n: true, d: true, seed: true},
	"ringexpanders": {k: true, blocks: true, d: true, seed: true},
	"gnp":           {n: true, p: true, seed: true},
}

// GraphFamilies lists the known generator families, ascending.
func GraphFamilies() []string {
	out := make([]string, 0, len(graphFamilies))
	for f := range graphFamilies {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Normalized returns a copy with every field the family does not consume
// zeroed and square torus/grid dimensions folded into Rows/Cols, so specs
// that build the same graph render the same Key.
func (s GraphSpec) Normalized() GraphSpec {
	use, ok := graphFamilies[s.Family]
	if !ok {
		return s
	}
	out := GraphSpec{Family: s.Family}
	if use.n {
		out.N = s.N
	}
	if use.k {
		out.K = s.K
	}
	if use.blocks {
		out.Blocks = s.Blocks
	}
	if use.bridge {
		out.Bridge = s.Bridge
		if s.Family == "lollipop" && out.Bridge == 0 {
			out.Bridge = out.K // Build's documented default, folded into the key
		}
	}
	if use.d {
		out.D = s.D
	}
	if use.dim {
		switch s.Family {
		case "hypercube":
			out.Dim = s.Dim
		default: // torus, grid: fold Dim into Rows/Cols
			out.Rows, out.Cols = s.Rows, s.Cols
			if out.Rows == 0 {
				out.Rows = s.Dim
			}
			if out.Cols == 0 {
				out.Cols = s.Dim
			}
		}
	}
	if use.p {
		out.P = s.P
	}
	if use.seed {
		out.Seed = s.Seed
	}
	return out
}

// Validate checks the family is known and its parameters are in range
// (range checks beyond the generator's own are not duplicated here).
func (s GraphSpec) Validate() error {
	if _, ok := graphFamilies[s.Family]; !ok {
		return fmt.Errorf("spec: unknown graph family %q (known: %v)", s.Family, GraphFamilies())
	}
	return nil
}

// Key renders the canonical cache key of the normalized spec. Two specs
// with equal keys build identical graphs.
func (s GraphSpec) Key() string {
	n := s.Normalized()
	return fmt.Sprintf("%s/n=%d/k=%d/b=%d/br=%d/d=%d/dim=%d/%dx%d/p=%g/seed=%d",
		n.Family, n.N, n.K, n.Blocks, n.Bridge, n.D, n.Dim, n.Rows, n.Cols, n.P, n.Seed)
}

// Sharder returns the closed-form row sharder for coordinate-structured
// families — cycle, torus, grid, ringcliques — whose adjacency is a formula
// of the vertex id, letting a cluster peer materialize only its CSR shard
// (graph.BuildShard) instead of the whole graph. It returns (nil, nil) for
// families without one (callers fall back to Build), and an error only when
// the family is shardable but its parameters are invalid — the same
// validation failure Build would report.
func (s GraphSpec) Sharder() (*graph.Sharder, error) {
	n := s.Normalized()
	var (
		sh  graph.Sharder
		err error
	)
	switch n.Family {
	case "cycle":
		sh, err = gen.CycleSharder(n.N)
	case "torus":
		sh, err = gen.TorusSharder(n.Rows, n.Cols)
	case "grid":
		sh, err = gen.GridSharder(n.Rows, n.Cols)
	case "ringcliques":
		sh, err = gen.RingOfCliquesSharder(n.Blocks, n.K)
	default:
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &sh, nil
}

// Build constructs the graph. Deterministic: the randomized families seed
// their own RNG from the spec.
func (s GraphSpec) Build() (*graph.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	switch n.Family {
	case "complete":
		return gen.Complete(n.N)
	case "path":
		return gen.Path(n.N)
	case "cycle":
		return gen.Cycle(n.N)
	case "star":
		return gen.Star(n.N)
	case "torus":
		return gen.Torus(n.Rows, n.Cols)
	case "grid":
		return gen.Grid(n.Rows, n.Cols)
	case "hypercube":
		return gen.Hypercube(n.Dim)
	case "lollipop":
		return gen.Lollipop(n.K, n.Bridge) // Normalized folded the Bridge=K default
	case "dumbbell":
		return gen.Dumbbell(n.K, n.Bridge)
	case "barbell":
		return gen.Barbell(n.Blocks, n.K)
	case "ringcliques":
		return gen.RingOfCliques(n.Blocks, n.K)
	case "expander":
		return gen.RandomRegular(n.N, n.D, rand.New(rand.NewSource(n.Seed)))
	case "ringexpanders":
		return gen.RingOfExpanders(n.Blocks, n.K, n.D, rand.New(rand.NewSource(n.Seed)))
	case "gnp":
		return gen.ErdosRenyi(n.N, n.P, rand.New(rand.NewSource(n.Seed)))
	default:
		return nil, fmt.Errorf("spec: unknown graph family %q", n.Family)
	}
}
