package dyngraph

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// This file implements the adversarial churn models: state-aware
// (adaptive) adversaries that read protocol-published state through the
// congest.Topology view, plus the oblivious baselines they are rate-matched
// against and a vertex crash-stop/restart schedule. Like the oblivious
// models, every adversary is immutable and stateless across rounds — each
// ApplyRound first restores the whole superset and then recomputes the
// round's cuts from (seed, round, published state) alone — so one instance
// is safely shared by all the worker networks of a multi-source sweep.

// restoreAll reactivates every superset edge: the adversaries own the whole
// edge set, so reconstructing the round from scratch keeps them stateless.
func restoreAll(t *congest.Topology, edges []edge) {
	for i := range edges {
		t.SetEdgeAt(i, true)
	}
}

// incidentIndex lists, per vertex, the canonical edge indices of its
// incident superset edges.
func incidentIndex(g *graph.Graph, edges []edge) [][]int32 {
	inc := make([][]int32, g.N())
	for i, e := range edges {
		inc[e.u] = append(inc[e.u], int32(i))
		inc[e.v] = append(inc[e.v], int32(i))
	}
	return inc
}

// cutBudget deactivates up to budget of the candidate edges, drawn without
// replacement from the round's DeriveSeed(seed, round) stream (a partial
// Fisher–Yates over the candidate list). Protected (backbone) edges must
// already be excluded from cand. cand is scratch owned by the caller and is
// permuted in place.
func cutBudget(t *congest.Topology, s *sweep.Stream, cand []int32, budget int) {
	k := budget
	if k > len(cand) {
		k = len(cand)
	}
	for i := 0; i < k; i++ {
		j := i + int(s.Next()%uint64(len(cand)-i))
		cand[i], cand[j] = cand[j], cand[i]
		t.SetEdgeAt(int(cand[i]), false)
	}
}

// latestPublisher returns the vertex with the most recent publication
// (smallest id on ties), or -1 when nothing has been published this run.
func latestPublisher(t *congest.Topology) int {
	target, best := -1, -1
	for u := 0; u < t.N(); u++ {
		if _, r := t.Published(u); r > best {
			best, target = r, u
		}
	}
	return target
}

// TokenChaser is the adaptive token-chasing adversary: every round it reads
// the walk's published position (the freshest Context.Publish value) and
// cuts up to Budget of that vertex's incident edges — the edges the walk is
// about to cross — choosing them without replacement from the round's
// seeded stream. By default a BFS spanning backbone is never cut, so the
// topology stays connected every round and the walk eventually escapes
// (inflating its round count — the adaptive tau inflation E19 measures);
// WithoutBackbone lifts that and lets the chaser isolate the holder
// outright, the regime where core.TokenWalk's retry budget and checkpointed
// restarts are the only graceful exit. Until the protocol publishes
// anything the chaser cuts nothing. Immutable; implements
// congest.AdaptiveProvider.
type TokenChaser struct {
	seed      int64
	budget    int
	edges     []edge
	protected []bool
	incident  [][]int32
}

// NewTokenChaser builds a token-chasing adversary that cuts up to budget
// edges incident to the published walk position each round.
func NewTokenChaser(g *graph.Graph, seed int64, budget int) (*TokenChaser, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("dyngraph: cut budget must be ≥ 0, got %d", budget)
	}
	es := edgesOf(g)
	return &TokenChaser{
		seed: seed, budget: budget, edges: es,
		protected: spanningBackbone(g, es),
		incident:  incidentIndex(g, es),
	}, nil
}

// WithoutBackbone returns a copy of the chaser that may cut backbone edges
// too: with budget ≥ the maximum degree it can fully isolate the walk
// holder. The receiver is unchanged.
func (p *TokenChaser) WithoutBackbone() *TokenChaser {
	q := *p
	q.protected = make([]bool, len(p.edges))
	return &q
}

// Adaptive implements congest.AdaptiveProvider.
func (p *TokenChaser) Adaptive() bool { return true }

// Start implements congest.TopologyProvider: all edges begin active.
func (p *TokenChaser) Start(t *congest.Topology) { checkSuperset(t, p.edges) }

// ApplyRound restores the superset, locates the freshest published
// position, and cuts up to Budget of its unprotected incident edges.
func (p *TokenChaser) ApplyRound(round int, t *congest.Topology) {
	restoreAll(t, p.edges)
	target := latestPublisher(t)
	if target < 0 || p.budget == 0 {
		return
	}
	cand := make([]int32, 0, len(p.incident[target]))
	for _, ei := range p.incident[target] {
		if !p.protected[ei] {
			cand = append(cand, ei)
		}
	}
	cutBudget(t, roundStream(p.seed, round), cand, p.budget)
}

// UniformCutter is the oblivious rate-matched baseline of the adversaries:
// every round it restores the superset and cuts exactly Budget non-backbone
// edges drawn uniformly without replacement from the round's seeded stream,
// blind to any protocol state. Pairing it with a TokenChaser of the same
// budget isolates adaptivity itself — same number of edges down per round,
// only the placement differs (E19). Immutable; implements
// congest.TopologyProvider.
type UniformCutter struct {
	seed      int64
	budget    int
	edges     []edge
	cuttable  []int32 // canonical indices of the non-backbone edges
	protected []bool
}

// NewUniformCutter builds the oblivious uniform edge-cutting model.
func NewUniformCutter(g *graph.Graph, seed int64, budget int) (*UniformCutter, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("dyngraph: cut budget must be ≥ 0, got %d", budget)
	}
	es := edgesOf(g)
	prot := spanningBackbone(g, es)
	var cut []int32
	for i := range es {
		if !prot[i] {
			cut = append(cut, int32(i))
		}
	}
	return &UniformCutter{seed: seed, budget: budget, edges: es, cuttable: cut, protected: prot}, nil
}

// Start implements congest.TopologyProvider: all edges begin active.
func (p *UniformCutter) Start(t *congest.Topology) { checkSuperset(t, p.edges) }

// ApplyRound restores the superset and cuts Budget uniform non-backbone
// edges.
func (p *UniformCutter) ApplyRound(round int, t *congest.Topology) {
	restoreAll(t, p.edges)
	if p.budget == 0 {
		return
	}
	cand := make([]int32, len(p.cuttable))
	copy(cand, p.cuttable)
	cutBudget(t, roundStream(p.seed, round), cand, p.budget)
}

// BoundaryAttacker is the adaptive witness-set adversary: it ranks nodes by
// their published values (walk mass, in Algorithm 2's dynamic runs), takes
// the top Size as the emerging witness set S, and cuts up to Budget of the
// boundary edges ∂S — throttling exactly the conductance the local-mixing
// test depends on. Ties rank by smaller id; nodes that have not published
// rank below all publishers; until anything is published the attacker cuts
// nothing. A BFS backbone is protected so every round stays connected
// (WithoutBackbone lifts that). Immutable; implements
// congest.AdaptiveProvider.
type BoundaryAttacker struct {
	seed      int64
	size      int
	budget    int
	edges     []edge
	protected []bool
}

// NewBoundaryAttacker builds a boundary adversary targeting the top-size
// published-mass set with a per-round cut budget.
func NewBoundaryAttacker(g *graph.Graph, seed int64, size, budget int) (*BoundaryAttacker, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if size < 1 || size > g.N() {
		return nil, fmt.Errorf("dyngraph: target set size must be in [1,%d], got %d", g.N(), size)
	}
	if budget < 0 {
		return nil, fmt.Errorf("dyngraph: cut budget must be ≥ 0, got %d", budget)
	}
	es := edgesOf(g)
	return &BoundaryAttacker{
		seed: seed, size: size, budget: budget, edges: es,
		protected: spanningBackbone(g, es),
	}, nil
}

// WithoutBackbone returns a copy of the attacker that may cut backbone
// edges too. The receiver is unchanged.
func (p *BoundaryAttacker) WithoutBackbone() *BoundaryAttacker {
	q := *p
	q.protected = make([]bool, len(p.edges))
	return &q
}

// Adaptive implements congest.AdaptiveProvider.
func (p *BoundaryAttacker) Adaptive() bool { return true }

// Start implements congest.TopologyProvider: all edges begin active.
func (p *BoundaryAttacker) Start(t *congest.Topology) { checkSuperset(t, p.edges) }

// ApplyRound restores the superset, ranks publishers by value, and cuts up
// to Budget unprotected edges crossing the top-Size set's boundary.
func (p *BoundaryAttacker) ApplyRound(round int, t *congest.Topology) {
	restoreAll(t, p.edges)
	if p.budget == 0 {
		return
	}
	n := t.N()
	type ranked struct {
		v  int64
		id int32
	}
	pubs := make([]ranked, 0, n)
	for u := 0; u < n; u++ {
		if v, r := t.Published(u); r >= 0 {
			pubs = append(pubs, ranked{v: v, id: int32(u)})
		}
	}
	if len(pubs) == 0 {
		return
	}
	// Selection sort of just the top `size` ranks: (value desc, id asc).
	k := p.size
	if k > len(pubs) {
		k = len(pubs)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(pubs); j++ {
			if pubs[j].v > pubs[best].v || (pubs[j].v == pubs[best].v && pubs[j].id < pubs[best].id) {
				best = j
			}
		}
		pubs[i], pubs[best] = pubs[best], pubs[i]
	}
	inside := make([]bool, n)
	for i := 0; i < k; i++ {
		inside[pubs[i].id] = true
	}
	cand := make([]int32, 0, p.budget*2)
	for i, e := range p.edges {
		if !p.protected[i] && inside[e.u] != inside[e.v] {
			cand = append(cand, int32(i))
		}
	}
	cutBudget(t, roundStream(p.seed, round), cand, p.budget)
}

// CrashRestart is the vertex crash-stop/restart schedule: each round every
// unprotected vertex independently crashes with probability PCrash, taking
// all its incident edges down, and restarts Down rounds later with its
// state intact. The restart is a state-handoff restart: this simulator
// keeps a crashed vertex's process state (its walk mass, a held token) in
// place while its edges are down, so a restarting vertex rejoins with
// exactly the state it checkpointed at the crash — isolated mass is
// conserved, and a token stranded on a crashed holder resumes (or
// checkpoint-restarts, see core.TokenWalk) when the vertex returns. The
// down set is recomputed per round from (seed, round) alone — vertex u is
// down at round r iff some round in (r-Down, r] crashed it — so the model
// is stateless and sweep-shareable like every other. Vertex crashes
// necessarily cut backbone edges, so per-round connectivity is NOT
// preserved; protocols must tolerate partitions (the control plane rides
// the superset). Immutable; implements congest.TopologyProvider.
type CrashRestart struct {
	seed      int64
	pCrash    float64
	down      int
	n         int
	edges     []edge
	protected []bool // per vertex: never crashes
}

// NewCrashRestart builds a crash-stop/restart schedule. down is how many
// rounds a crashed vertex stays down (≥ 1); protect lists vertices that
// never crash (e.g. a walk source kept stable for an experiment).
func NewCrashRestart(g *graph.Graph, seed int64, pCrash float64, down int, protect ...int) (*CrashRestart, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if pCrash < 0 || pCrash > 1 {
		return nil, fmt.Errorf("dyngraph: crash probability must be in [0,1], got %g", pCrash)
	}
	if down < 1 {
		return nil, fmt.Errorf("dyngraph: down duration must be ≥ 1 round, got %d", down)
	}
	prot := make([]bool, g.N())
	for _, u := range protect {
		if u < 0 || u >= g.N() {
			return nil, fmt.Errorf("dyngraph: protected vertex %d out of range [0,%d)", u, g.N())
		}
		prot[u] = true
	}
	return &CrashRestart{
		seed: seed, pCrash: pCrash, down: down, n: g.N(),
		edges: edgesOf(g), protected: prot,
	}, nil
}

// Start implements congest.TopologyProvider: all vertices begin up.
func (p *CrashRestart) Start(t *congest.Topology) { checkSuperset(t, p.edges) }

// Down reports whether vertex u is crashed in round r — a pure function of
// (seed, round), exported so tests and experiments can assert the schedule
// without a network.
func (p *CrashRestart) Down(u, r int) bool {
	if u < 0 || u >= p.n || p.protected[u] {
		return false
	}
	lo := r - p.down + 1
	if lo < 1 {
		lo = 1
	}
	for rr := lo; rr <= r; rr++ {
		s := roundStream(p.seed, rr)
		for v := 0; v <= u; v++ {
			if f := s.Float(); v == u && f < p.pCrash {
				return true
			}
		}
	}
	return false
}

// ApplyRound recomputes the round's down set and deactivates every edge
// with a crashed endpoint.
func (p *CrashRestart) ApplyRound(round int, t *congest.Topology) {
	down := make([]bool, p.n)
	lo := round - p.down + 1
	if lo < 1 {
		lo = 1
	}
	for rr := lo; rr <= round; rr++ {
		s := roundStream(p.seed, rr)
		for u := 0; u < p.n; u++ {
			if f := s.Float(); f < p.pCrash && !p.protected[u] {
				down[u] = true
			}
		}
	}
	for i, e := range p.edges {
		t.SetEdgeAt(i, !down[e.u] && !down[e.v])
	}
}
