package dyngraph

import (
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// stepProc adapts a step closure to congest.Process for adversary tests.
type stepProc struct{ step func(ctx *congest.Context) }

func (p stepProc) Init(ctx *congest.Context) {}
func (p stepProc) Step(ctx *congest.Context) { p.step(ctx) }

func TestTokenChaserCutsAroundPublisher(t *testing.T) {
	g, err := gen.RingOfCliques(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := NewTokenChaser(g, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !congest.IsAdaptive(prov) {
		t.Fatal("TokenChaser must report itself adaptive")
	}

	net, err := congest.NewNetwork(g, congest.Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	// With no publications the chaser must leave the superset intact.
	if err := net.ProbeRounds(6, func(round int, tp *congest.Topology) {
		if tp.ActiveEdges() != g.M() {
			t.Fatalf("round %d: chaser cut %d edges with nothing published", round, g.M()-tp.ActiveEdges())
		}
	}); err != nil {
		t.Fatal(err)
	}

	// A process that publishes its position makes the chaser attack it: the
	// publisher's active degree must drop, and never below 1 (backbone).
	const target = 5
	attacked := 0
	procs := func(id int) congest.Process {
		return stepProc{step: func(ctx *congest.Context) {
			if ctx.ID() == target {
				ctx.Publish(int64(target))
				if ctx.Round() > 1 && ctx.ActiveDegree() < ctx.Degree() {
					attacked++
				}
				if ctx.ActiveDegree() < 1 {
					t.Errorf("round %d: backbone-protected chaser isolated the target", ctx.Round())
				}
			}
			if ctx.Round() >= 8 {
				ctx.Halt()
			}
		}}
	}
	if _, err := net.Run(procs); err != nil {
		t.Fatal(err)
	}
	if attacked == 0 {
		t.Fatal("chaser never cut an edge at the published position")
	}
}

func TestTokenChaserWithoutBackboneIsolates(t *testing.T) {
	g, err := gen.RingOfCliques(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewTokenChaser(g, 7, g.N()) // budget ≥ max degree
	if err != nil {
		t.Fatal(err)
	}
	prov := base.WithoutBackbone()
	net, err := congest.NewNetwork(g, congest.Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	isolated := false
	procs := func(id int) congest.Process {
		return stepProc{step: func(ctx *congest.Context) {
			if ctx.ID() == 0 {
				ctx.Publish(0)
				if ctx.Round() > 1 && ctx.ActiveDegree() == 0 {
					isolated = true
				}
			}
			if ctx.Round() >= 4 {
				ctx.Halt()
			}
		}}
	}
	if _, err := net.Run(procs); err != nil {
		t.Fatal(err)
	}
	if !isolated {
		t.Fatal("unrestricted chaser with budget ≥ degree never isolated the publisher")
	}
}

func TestUniformCutterRateMatched(t *testing.T) {
	g, err := gen.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 4
	prov, err := NewUniformCutter(g, 9, budget)
	if err != nil {
		t.Fatal(err)
	}
	if congest.IsAdaptive(prov) {
		t.Fatal("UniformCutter is oblivious, must not report adaptive")
	}
	net, err := congest.NewNetwork(g, congest.Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ProbeRounds(10, func(round int, tp *congest.Topology) {
		if round == 0 {
			return
		}
		if cut := g.M() - tp.ActiveEdges(); cut != budget {
			t.Fatalf("round %d: %d edges cut, want exactly %d", round, cut, budget)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Per-round connectivity must hold (backbone protected).
	if err := VerifyTInterval(g, prov, 10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryAttackerCutsWitnessBoundary(t *testing.T) {
	g, err := gen.RingOfCliques(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	const size, budget = 5, 4
	base, err := NewBoundaryAttacker(g, 3, size, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !congest.IsAdaptive(base) {
		t.Fatal("BoundaryAttacker must report itself adaptive")
	}
	// The witness set is a whole clique, so its only boundary edges are the
	// ring bridges — cut edges, hence backbone: the attacker needs
	// WithoutBackbone to touch them at all.
	prov := base.WithoutBackbone()
	net, err := congest.NewNetwork(g, congest.Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	// Publish high mass on clique 0 (vertices 0..4): those become the
	// witness set, and the attacker must cut only boundary edges.
	cutInside, cutBoundary := 0, 0
	procs := func(id int) congest.Process {
		return stepProc{step: func(ctx *congest.Context) {
			if ctx.ID() < size {
				ctx.Publish(1000 - int64(ctx.ID()))
			} else {
				ctx.Publish(int64(ctx.ID()))
			}
			if ctx.Round() > 1 {
				for i, v := range ctx.Neighbors() {
					if !ctx.EdgeActive(i) {
						if ctx.ID() < size && int(v) < size {
							cutInside++
						} else if (ctx.ID() < size) != (int(v) < size) {
							cutBoundary++
						}
					}
				}
			}
			if ctx.Round() >= 6 {
				ctx.Halt()
			}
		}}
	}
	if _, err := net.Run(procs); err != nil {
		t.Fatal(err)
	}
	if cutInside > 0 {
		t.Errorf("boundary attacker cut %d edges inside the witness set", cutInside)
	}
	if cutBoundary == 0 {
		t.Fatal("boundary attacker never cut a witness-boundary edge")
	}
}

func TestCrashRestartSchedule(t *testing.T) {
	g, err := gen.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	const down = 3
	prov, err := NewCrashRestart(g, 21, 0.05, down, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := congest.NewNetwork(g, congest.Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	if err := net.ProbeRounds(40, func(round int, tp *congest.Topology) {
		for u := 0; u < g.N(); u++ {
			wantDown := prov.Down(u, round)
			gotDown := tp.ActiveDegree(u) == 0
			if wantDown {
				crashes++
				if !gotDown {
					t.Fatalf("round %d: vertex %d scheduled down but has %d active edges", round, u, tp.ActiveDegree(u))
				}
			}
			if u == 0 && gotDown {
				t.Fatalf("round %d: protected vertex 0 crashed", round)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if crashes == 0 {
		t.Fatal("CrashRestart(p=0.05) produced no crashes in 40 rounds over 25 vertices")
	}

	// Down is a pure function of (seed, round): an identical model must
	// agree everywhere; restart must actually happen (a vertex down at some
	// round is up again down rounds after its last crash draw).
	again, err := NewCrashRestart(g, 21, 0.05, down, 0)
	if err != nil {
		t.Fatal(err)
	}
	recovered := false
	for u := 0; u < g.N(); u++ {
		for r := 1; r <= 40; r++ {
			if prov.Down(u, r) != again.Down(u, r) {
				t.Fatalf("Down(%d,%d) not reproducible", u, r)
			}
			if r > down && prov.Down(u, r-down) && !prov.Down(u, r) {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Error("no vertex ever restarted within the probe horizon")
	}
}

func TestAdversaryValidation(t *testing.T) {
	g, err := gen.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTokenChaser(g, 1, -1); err == nil {
		t.Error("NewTokenChaser accepted a negative budget")
	}
	if _, err := NewUniformCutter(g, 1, -1); err == nil {
		t.Error("NewUniformCutter accepted a negative budget")
	}
	if _, err := NewBoundaryAttacker(g, 1, 0, 1); err == nil {
		t.Error("NewBoundaryAttacker accepted size 0")
	}
	if _, err := NewBoundaryAttacker(g, 1, g.N()+1, 1); err == nil {
		t.Error("NewBoundaryAttacker accepted size > N")
	}
	if _, err := NewCrashRestart(g, 1, 1.5, 1); err == nil {
		t.Error("NewCrashRestart accepted p > 1")
	}
	if _, err := NewCrashRestart(g, 1, 0.1, 0); err == nil {
		t.Error("NewCrashRestart accepted down = 0")
	}
	if _, err := NewCrashRestart(g, 1, 0.1, 2, g.N()); err == nil {
		t.Error("NewCrashRestart accepted an out-of-range protected vertex")
	}
	disc := graph.NewBuilder(4).Build()
	if _, err := NewTokenChaser(disc, 1, 1); err == nil {
		t.Error("NewTokenChaser accepted a disconnected superset")
	}
}

func TestVerifyTInterval(t *testing.T) {
	g, err := gen.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}

	// Backbone-protected churn is 1-interval connected by construction.
	markov, err := NewEdgeMarkov(g, 11, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTInterval(g, markov, 20, 1); err != nil {
		t.Fatalf("backbone-protected EdgeMarkov: %v", err)
	}

	// An Interval model holding each sample for `every` rounds is at least
	// `every`-interval connected: each window of that length overlaps at
	// most two samples, both containing the backbone... in fact the backbone
	// alone makes ANY T hold, so use MaxTInterval to assert the ceiling.
	maxT, err := MaxTInterval(g, markov, 20)
	if err != nil {
		t.Fatal(err)
	}
	if maxT != 21 {
		t.Errorf("backbone-protected model: MaxTInterval = %d, want 21 (backbone survives every intersection)", maxT)
	}

	// Without the backbone, aggressive churn must break connectivity for
	// large T; the verifier must report the violating window.
	wild, err := NewEdgeMarkov(g, 11, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	loose := wild.WithoutBackbone()
	maxT, err = MaxTInterval(g, loose, 20)
	if err != nil {
		t.Fatal(err)
	}
	if maxT >= 21 {
		t.Fatal("EdgeMarkov(0.6,0.2) without backbone kept a 21-round stable connected subgraph")
	}
	if err := VerifyTInterval(g, loose, 20, maxT+1); err == nil {
		t.Fatalf("VerifyTInterval(T=%d) passed above the MaxTInterval ceiling", maxT+1)
	} else if !strings.Contains(err.Error(), "interval connected") {
		t.Errorf("violation error %q does not name the window", err)
	}
	if maxT > 0 {
		if err := VerifyTInterval(g, loose, 20, maxT); err != nil {
			t.Errorf("VerifyTInterval(T=%d) failed at the MaxTInterval ceiling: %v", maxT, err)
		}
	}

	// Out-of-range T is rejected.
	if err := VerifyTInterval(g, markov, 5, 0); err == nil {
		t.Error("VerifyTInterval accepted T=0")
	}
	if err := VerifyTInterval(g, markov, 5, 7); err == nil {
		t.Error("VerifyTInterval accepted T > rounds+1")
	}
}
