package dyngraph

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
)

// This file is the Kuhn–Lynch–Oshman T-interval-connectivity verifier: a
// test utility that replays a TopologyProvider's rounds through
// congest.Network.ProbeRounds (so it checks exactly the edge sets a real
// Run would see) and decides whether every window of T consecutive rounds
// shares a connected spanning subgraph. A dynamic network is T-interval
// connected when for all r, the intersection of the edge sets of rounds
// r..r+T-1 contains a spanning connected subgraph; 1-interval connectivity
// is per-round connectivity.

// edgeBitsets captures each probed round's active edge set as a bitset over
// canonical edge indices.
func edgeBitsets(g *graph.Graph, prov congest.TopologyProvider, rounds int) ([][]uint64, []edge, error) {
	net, err := congest.NewNetwork(g, congest.Config{Topology: prov, Workers: 1})
	if err != nil {
		return nil, nil, err
	}
	es := edgesOf(g)
	words := (len(es) + 63) / 64
	sets := make([][]uint64, 0, rounds+1)
	err = net.ProbeRounds(rounds, func(round int, t *congest.Topology) {
		w := make([]uint64, words)
		for i := range es {
			if t.EdgeOnAt(i) {
				w[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		sets = append(sets, w)
	})
	if err != nil {
		return nil, nil, err
	}
	return sets, es, nil
}

// spansConnected reports whether the edges whose bits are set span a
// connected graph on n vertices.
func spansConnected(n int, es []edge, set []uint64) bool {
	adj := make([][]int32, n)
	for i, e := range es {
		if set[i>>6]&(1<<(uint(i)&63)) != 0 {
			adj[e.u] = append(adj[e.u], e.v)
			adj[e.v] = append(adj[e.v], e.u)
		}
	}
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached == n
}

// VerifyTInterval replays prov over rounds 0..rounds on the superset g and
// checks T-interval connectivity: every window of T consecutive probed
// rounds must share a connected spanning subgraph. Returns nil when the
// property holds, and an error naming the first violating window otherwise.
// T must be ≥ 1 and ≤ rounds+1 (the number of probed rounds).
func VerifyTInterval(g *graph.Graph, prov congest.TopologyProvider, rounds, T int) error {
	if T < 1 || T > rounds+1 {
		return fmt.Errorf("dyngraph: interval T=%d out of range [1,%d]", T, rounds+1)
	}
	sets, es, err := edgeBitsets(g, prov, rounds)
	if err != nil {
		return err
	}
	inter := make([]uint64, len(sets[0]))
	for start := 0; start+T <= len(sets); start++ {
		copy(inter, sets[start])
		for r := start + 1; r < start+T; r++ {
			for w := range inter {
				inter[w] &= sets[r][w]
			}
		}
		if !spansConnected(g.N(), es, inter) {
			return fmt.Errorf("dyngraph: rounds [%d,%d] share no connected spanning subgraph (not %d-interval connected)", start, start+T-1, T)
		}
	}
	return nil
}

// MaxTInterval replays prov over rounds 0..rounds and returns the largest T
// for which the probed schedule is T-interval connected, or 0 when even
// single rounds disconnect (T-interval connectivity is monotone: a T-window
// is contained in a (T+1)-window, and a smaller window's intersection is a
// superset of the bigger one's, so (T+1)-connected implies T-connected —
// which makes binary search valid).
func MaxTInterval(g *graph.Graph, prov congest.TopologyProvider, rounds int) (int, error) {
	sets, es, err := edgeBitsets(g, prov, rounds)
	if err != nil {
		return 0, err
	}
	holds := func(T int) bool {
		inter := make([]uint64, len(sets[0]))
		for start := 0; start+T <= len(sets); start++ {
			copy(inter, sets[start])
			for r := start + 1; r < start+T; r++ {
				for w := range inter {
					inter[w] &= sets[r][w]
				}
			}
			if !spansConnected(g.N(), es, inter) {
				return false
			}
		}
		return true
	}
	lo, hi := 0, len(sets) // invariant: holds(lo) (lo=0 vacuous), !holds(hi+1) conceptually
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if holds(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
