package dyngraph

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// This file holds convenience builders that produce a Snapshots model
// together with the superset graph it (and the engine) must run on, so CLI
// and service users can drive snapshot churn from generator parameters
// alone instead of constructing explicit graph lists (ROADMAP: "Snapshot
// churn from generators").

// NewRotatingRegular builds the rotating random-regular dynamic graph:
// count independent connected random d-regular samples on n vertices —
// each drawn from sweep.DeriveSeed(seed, i), so the whole family is
// reproducible from one seed — cycled with the given switch period. It
// returns the churn model and the union superset the network must be built
// on (every snapshot is a spanning connected subgraph of it by
// construction, so per-round connectivity holds without a protected
// backbone).
func NewRotatingRegular(n, d, count, period int, seed int64) (*Snapshots, *graph.Graph, error) {
	if count < 1 {
		return nil, nil, fmt.Errorf("dyngraph: rotating regular needs ≥ 1 snapshot, got %d", count)
	}
	snaps := make([]*graph.Graph, count)
	for i := range snaps {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(seed, i)))
		g, err := gen.RandomRegular(n, d, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("dyngraph: rotating regular snapshot %d: %w", i, err)
		}
		snaps[i] = g
	}
	super, err := Union(fmt.Sprintf("rotregular(n=%d,d=%d,snaps=%d,seed=%d)", n, d, count, seed), snaps...)
	if err != nil {
		return nil, nil, err
	}
	model, err := NewSnapshots(super, period, snaps...)
	if err != nil {
		return nil, nil, err
	}
	return model, super, nil
}
