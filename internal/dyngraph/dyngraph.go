package dyngraph

import (
	"errors"
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// roundStream returns the churn stream of the given round (or epoch): a
// sweep.Stream seeded with sweep.DeriveSeed(seed, round), so churn follows
// the same derived-randomness scheme as per-source sweep seeds.
func roundStream(seed int64, round int) *sweep.Stream {
	return sweep.NewStream(sweep.DeriveSeed(seed, round))
}

// edge is one undirected superset edge in canonical (u < v, CSR) order.
type edge struct{ u, v int32 }

// edgesOf lists the superset's undirected edges in canonical order — the
// order in which every model consumes its random draws.
func edgesOf(g *graph.Graph) []edge {
	es := make([]edge, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				es = append(es, edge{int32(u), v})
			}
		}
	}
	return es
}

// spanningBackbone marks, per canonical edge index, a BFS spanning tree of
// the superset rooted at vertex 0: the protected backbone that keeps every
// round's topology connected.
func spanningBackbone(g *graph.Graph, edges []edge) []bool {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, 0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if parent[v] < 0 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	inTree := func(a, b int32) bool { return parent[a] == b || parent[b] == a }
	marks := make([]bool, len(edges))
	for i, e := range edges {
		marks[i] = inTree(e.u, e.v)
	}
	return marks
}

// checkSuperset panics when a model built over one graph is attached to a
// network over another: the models address edges by canonical index
// (congest.Topology.SetEdgeAt), which is only meaningful on the graph they
// were constructed from. Called from every model's Start.
func checkSuperset(t *congest.Topology, edges []edge) {
	if t.Edges() != len(edges) {
		panic(fmt.Sprintf("dyngraph: model built for %d superset edges attached to a network with %d", len(edges), t.Edges()))
	}
}

// validate checks the common model preconditions.
func validate(g *graph.Graph) error {
	if g.N() == 0 {
		return errors.New("dyngraph: empty superset graph")
	}
	if !g.IsConnected() {
		return graph.ErrNotConnected
	}
	return nil
}

// EdgeMarkov is the edge-Markovian evolving graph: each non-protected
// superset edge runs an independent two-state chain, flipping on→off with
// probability POff and off→on with probability POn once per round. All
// edges start active. Immutable; implements congest.TopologyProvider.
type EdgeMarkov struct {
	seed      int64
	pOff, pOn float64
	edges     []edge
	protected []bool
}

// NewEdgeMarkov builds an edge-Markov churn model over the superset g with
// the given flip probabilities, protecting a BFS spanning backbone so every
// round's topology stays connected (use WithoutBackbone to lift that).
func NewEdgeMarkov(g *graph.Graph, seed int64, pOff, pOn float64) (*EdgeMarkov, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if pOff < 0 || pOff > 1 || pOn < 0 || pOn > 1 {
		return nil, fmt.Errorf("dyngraph: flip probabilities must be in [0,1], got pOff=%g pOn=%g", pOff, pOn)
	}
	es := edgesOf(g)
	return &EdgeMarkov{seed: seed, pOff: pOff, pOn: pOn, edges: es, protected: spanningBackbone(g, es)}, nil
}

// WithoutBackbone returns a copy of the model that churns every superset
// edge, including the spanning backbone — per-round connectivity is then no
// longer guaranteed (walk mass may transiently strand, and round counts can
// grow). The receiver is unchanged.
func (p *EdgeMarkov) WithoutBackbone() *EdgeMarkov {
	q := *p
	q.protected = make([]bool, len(p.edges))
	return &q
}

// Start implements congest.TopologyProvider: all edges begin active.
func (p *EdgeMarkov) Start(t *congest.Topology) { checkSuperset(t, p.edges) }

// ApplyRound steps every edge chain once, drawing from the round's
// DeriveSeed(seed, round) stream in canonical edge order (which matches the
// engine's edge indexing, so no per-edge hash lookups).
func (p *EdgeMarkov) ApplyRound(round int, t *congest.Topology) {
	s := roundStream(p.seed, round)
	for i := range p.edges {
		u01 := s.Float() // drawn unconditionally: stream position is per-edge
		if p.protected[i] {
			continue
		}
		if t.EdgeOnAt(i) {
			if u01 < p.pOff {
				t.SetEdgeAt(i, false)
			}
		} else if u01 < p.pOn {
			t.SetEdgeAt(i, true)
		}
	}
}

// Interval is the T-interval-stable resampling model: every Every rounds
// the non-protected edge set is redrawn — each edge kept active with
// probability Keep — and then held fixed for the whole window, so any
// Every-round interval has a stable connected subgraph (the backbone plus
// the window's sample). Immutable; implements congest.TopologyProvider.
type Interval struct {
	seed      int64
	every     int
	keep      float64
	edges     []edge
	protected []bool
}

// NewInterval builds a T-interval resampling model: a fresh Bernoulli(keep)
// subsample of the non-backbone superset edges every `every` rounds.
func NewInterval(g *graph.Graph, seed int64, every int, keep float64) (*Interval, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if every < 1 {
		return nil, fmt.Errorf("dyngraph: resample interval must be ≥ 1, got %d", every)
	}
	if keep < 0 || keep > 1 {
		return nil, fmt.Errorf("dyngraph: keep probability must be in [0,1], got %g", keep)
	}
	es := edgesOf(g)
	return &Interval{seed: seed, every: every, keep: keep, edges: es, protected: spanningBackbone(g, es)}, nil
}

// Start applies the first window's sample so rounds 1..Every see it.
func (p *Interval) Start(t *congest.Topology) {
	checkSuperset(t, p.edges)
	p.apply(0, t)
}

// ApplyRound resamples at window boundaries and is a no-op inside windows.
func (p *Interval) ApplyRound(round int, t *congest.Topology) {
	if (round-1)%p.every != 0 {
		return
	}
	p.apply((round-1)/p.every, t)
}

func (p *Interval) apply(epoch int, t *congest.Topology) {
	s := roundStream(p.seed, epoch)
	for i := range p.edges {
		u01 := s.Float()
		if p.protected[i] {
			continue
		}
		t.SetEdgeAt(i, u01 < p.keep)
	}
}

// Snapshots cycles the topology through an explicit list of subgraphs of
// the superset, switching every Period rounds: snapshot k is live during
// rounds (k·Period, (k+1)·Period] (mod the cycle). Immutable; implements
// congest.TopologyProvider.
type Snapshots struct {
	period int
	edges  []edge
	on     [][]bool // per snapshot, per canonical superset edge index
}

// NewSnapshots builds a periodic-switching model from generator snapshots.
// Every snapshot must be a connected spanning subgraph of the superset g on
// the same vertex set; build the superset with Union when starting from
// independent generator outputs.
func NewSnapshots(g *graph.Graph, period int, snaps ...*graph.Graph) (*Snapshots, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if period < 1 {
		return nil, fmt.Errorf("dyngraph: switch period must be ≥ 1, got %d", period)
	}
	if len(snaps) == 0 {
		return nil, errors.New("dyngraph: need at least one snapshot")
	}
	es := edgesOf(g)
	on := make([][]bool, len(snaps))
	for k, s := range snaps {
		if s.N() != g.N() {
			return nil, fmt.Errorf("dyngraph: snapshot %d has %d vertices, superset has %d", k, s.N(), g.N())
		}
		if !s.IsConnected() {
			return nil, fmt.Errorf("dyngraph: snapshot %d (%s): %w", k, s.Name(), graph.ErrNotConnected)
		}
		for u := 0; u < s.N(); u++ {
			for _, v := range s.Neighbors(u) {
				if int32(u) < v && !g.HasEdge(u, int(v)) {
					return nil, fmt.Errorf("dyngraph: snapshot %d edge {%d,%d} is not a superset edge", k, u, v)
				}
			}
		}
		marks := make([]bool, len(es))
		for i, e := range es {
			marks[i] = s.HasEdge(int(e.u), int(e.v))
		}
		on[k] = marks
	}
	return &Snapshots{period: period, edges: es, on: on}, nil
}

// Start applies snapshot 0.
func (p *Snapshots) Start(t *congest.Topology) {
	checkSuperset(t, p.edges)
	p.apply(0, t)
}

// ApplyRound switches snapshots at period boundaries and is a no-op in
// between.
func (p *Snapshots) ApplyRound(round int, t *congest.Topology) {
	if (round-1)%p.period != 0 {
		return
	}
	p.apply(((round-1)/p.period)%len(p.on), t)
}

func (p *Snapshots) apply(idx int, t *congest.Topology) {
	marks := p.on[idx]
	for i := range p.edges {
		t.SetEdgeAt(i, marks[i])
	}
}

// Union builds the superset of the given graphs (all on the same vertex
// set): the graph whose edge set is the union of theirs. Use it to derive
// the static superset that NewSnapshots and the engine are sized for.
func Union(name string, gs ...*graph.Graph) (*graph.Graph, error) {
	if len(gs) == 0 {
		return nil, errors.New("dyngraph: union of zero graphs")
	}
	n := gs[0].N()
	b := graph.NewBuilder(n)
	b.SetName(name)
	for k, g := range gs {
		if g.N() != n {
			return nil, fmt.Errorf("dyngraph: union operand %d has %d vertices, want %d", k, g.N(), n)
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if int32(u) < v {
					b.AddEdge(u, int(v))
				}
			}
		}
	}
	return b.Build(), nil
}
