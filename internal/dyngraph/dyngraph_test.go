package dyngraph

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// probe records, for each round, which of its incident edges are active.
type probe struct {
	horizon int
	act     [][]bool
}

func (p *probe) Init(ctx *congest.Context) {}
func (p *probe) Step(ctx *congest.Context) {
	row := make([]bool, ctx.Degree())
	for i := range row {
		row[i] = ctx.EdgeActive(i)
	}
	p.act = append(p.act, row)
	if ctx.Round() >= p.horizon {
		ctx.Halt()
	}
}

// trajectory runs the provider on g for `rounds` rounds and returns each
// node's per-round incident-edge activity.
func trajectory(t *testing.T, g *graph.Graph, prov congest.TopologyProvider, rounds, workers int) [][][]bool {
	t.Helper()
	net, err := congest.NewNetwork(g, congest.Config{Workers: workers, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	probes := make([]*probe, g.N())
	if _, err := net.Run(func(id int) congest.Process {
		probes[id] = &probe{horizon: rounds}
		return probes[id]
	}); err != nil {
		t.Fatal(err)
	}
	out := make([][][]bool, g.N())
	for u := range probes {
		out[u] = probes[u].act
	}
	return out
}

// activeAt rebuilds the round-r active subgraph from a trajectory and
// reports whether it is connected.
func connectedAt(g *graph.Graph, traj [][][]bool, r int) bool {
	b := graph.NewBuilder(g.N())
	for u := 0; u < g.N(); u++ {
		for i, v := range g.Neighbors(u) {
			if traj[u][r][i] && int32(u) < v {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build().IsConnected()
}

func TestEdgeMarkovChurnsAndStaysConnected(t *testing.T) {
	g, err := gen.RingOfCliques(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := NewEdgeMarkov(g, 11, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 12
	traj := trajectory(t, g, prov, rounds, 1)

	churned := false
	for r := 0; r < rounds; r++ {
		if !connectedAt(g, traj, r) {
			t.Fatalf("round %d: active subgraph disconnected despite backbone", r+1)
		}
		for u := range traj {
			for i := range traj[u][r] {
				if !traj[u][r][i] {
					churned = true
				}
			}
		}
	}
	if !churned {
		t.Fatal("EdgeMarkov(0.3, 0.5) never deactivated an edge in 12 rounds")
	}

	// Same seed → identical trajectory (also across worker counts); a
	// different seed must diverge.
	again := trajectory(t, g, prov, rounds, 2)
	other, err := NewEdgeMarkov(g, 12, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	diff := trajectory(t, g, other, rounds, 1)
	same, differs := true, false
	for u := range traj {
		for r := range traj[u] {
			for i := range traj[u][r] {
				if traj[u][r][i] != again[u][r][i] {
					same = false
				}
				if traj[u][r][i] != diff[u][r][i] {
					differs = true
				}
			}
		}
	}
	if !same {
		t.Error("same seed and worker change produced a different churn trajectory")
	}
	if !differs {
		t.Error("different seeds produced identical churn trajectories")
	}
}

func TestIntervalStableWithinWindows(t *testing.T) {
	g, err := gen.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const every = 4
	prov, err := NewInterval(g, 5, every, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3 * every
	traj := trajectory(t, g, prov, rounds, 1)
	changedAcrossWindows := false
	for u := range traj {
		for r := 1; r < rounds; r++ {
			for i := range traj[u][r] {
				if traj[u][r][i] != traj[u][r-1][i] {
					if r%every != 0 {
						t.Fatalf("node %d edge %d changed at round %d, inside a window", u, i, r+1)
					}
					changedAcrossWindows = true
				}
			}
		}
	}
	if !changedAcrossWindows {
		t.Error("Interval(keep=0.5) never changed the topology at a window boundary")
	}
	for r := 0; r < rounds; r++ {
		if !connectedAt(g, traj, r) {
			t.Fatalf("round %d: active subgraph disconnected despite backbone", r+1)
		}
	}
}

func TestSnapshotsCycle(t *testing.T) {
	n := 8
	a, err := gen.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	super, err := Union("cycle∪star", a, b)
	if err != nil {
		t.Fatal(err)
	}
	const period = 3
	prov, err := NewSnapshots(super, period, a, b)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4 * period
	traj := trajectory(t, super, prov, rounds, 1)
	for r := 0; r < rounds; r++ {
		want := [2]*graph.Graph{a, b}[(r/period)%2]
		for u := 0; u < super.N(); u++ {
			for i, v := range super.Neighbors(u) {
				if got, exp := traj[u][r][i], want.HasEdge(u, int(v)); got != exp {
					t.Fatalf("round %d: edge {%d,%d} active=%v, want %v (snapshot %d)", r+1, u, v, got, exp, (r/period)%2)
				}
			}
		}
	}
}

func TestSnapshotsValidation(t *testing.T) {
	a, _ := gen.Cycle(8)
	b, _ := gen.Star(8)
	if _, err := NewSnapshots(a, 2, b); err == nil {
		t.Error("snapshot with non-superset edges accepted")
	}
	small, _ := gen.Cycle(4)
	super, _ := Union("u", a, b)
	if _, err := NewSnapshots(super, 2, small); err == nil {
		t.Error("snapshot with wrong vertex count accepted")
	}
	if _, err := NewSnapshots(super, 0, a); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := NewSnapshots(super, 2); err == nil {
		t.Error("empty snapshot list accepted")
	}
}

func TestModelValidation(t *testing.T) {
	g, _ := gen.Torus(4, 4)
	if _, err := NewEdgeMarkov(g, 1, -0.1, 0.5); err == nil {
		t.Error("negative pOff accepted")
	}
	if _, err := NewEdgeMarkov(g, 1, 0.5, 1.5); err == nil {
		t.Error("pOn > 1 accepted")
	}
	if _, err := NewInterval(g, 1, 0, 0.5); err == nil {
		t.Error("interval 0 accepted")
	}
	two := graph.NewBuilder(4).Build() // disconnected
	if _, err := NewEdgeMarkov(two, 1, 0.1, 0.1); err == nil {
		t.Error("disconnected superset accepted")
	}
}

func TestWithoutBackboneCanDisconnect(t *testing.T) {
	g, err := gen.Path(6)
	if err != nil {
		t.Fatal(err)
	}
	// On a path every edge is backbone; the default model therefore never
	// churns, while WithoutBackbone with pOff=1 kills edges immediately.
	keep, err := NewEdgeMarkov(g, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	traj := trajectory(t, g, keep, 4, 1)
	for r := 0; r < 4; r++ {
		if !connectedAt(g, traj, r) {
			t.Fatal("backbone-protected path lost an edge")
		}
	}
	loose := keep.WithoutBackbone()
	traj = trajectory(t, g, loose, 4, 1)
	if connectedAt(g, traj, 3) {
		t.Error("pOff=1 without backbone left the path connected")
	}
}
