// Package dyngraph provides seeded, deterministic churn models for the
// dynamic-network mode of the congest engine: implementations of
// congest.TopologyProvider that activate and deactivate edges of a static
// superset graph at round boundaries.
//
// The dynamic-network model follows the synchronous evolving-graph setting
// of Kuhn–Lynch–Oshman and the random-walk line of Das Sarma, Molla and
// Pandurangan ("Fast Distributed Computation in Dynamic Networks via Random
// Walks"; see PAPERS.md): a fixed vertex set, a per-round edge set
// G_r ⊆ G chosen by an oblivious adversary, and — unless a model is built
// WithoutBackbone — every-round connectivity, which that literature
// assumes. Connectivity is guaranteed structurally: each model protects a
// BFS spanning tree of the superset and only churns the remaining edges.
//
// Three adversaries are provided:
//
//   - EdgeMarkov: every non-protected edge runs an independent two-state
//     Markov chain (P(on→off), P(off→on)) stepped once per round — the
//     standard edge-Markovian evolving-graph model.
//   - Interval: every T rounds the non-protected edge set is resampled
//     (each edge kept with probability q) and then held fixed — a
//     T-interval-stable topology in the spirit of T-interval connectivity.
//   - Snapshots: the topology switches periodically through an explicit
//     list of subgraphs of the superset (generator snapshots), cycling
//     forever.
//
// # Determinism
//
// Models are immutable after construction: all churn state lives in the
// engine's edge-activity overlay (the congest.Topology view), which every
// Run rewinds, so one model instance is safely shared by all the worker
// networks of a multi-source sweep. Every random decision of round r is
// drawn from a splitmix64 stream seeded with sweep.DeriveSeed(seed, r)
// (Interval uses the epoch index r/T), so a fixed model seed reproduces the
// whole churn schedule — independent of worker count, sweep schedule, or
// how many runs share the model.
package dyngraph
