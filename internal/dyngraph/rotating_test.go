package dyngraph

import (
	"reflect"
	"testing"

	"repro/internal/congest"
)

func TestRotatingRegularBuilds(t *testing.T) {
	model, super, err := NewRotatingRegular(24, 3, 3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if super.N() != 24 {
		t.Fatalf("superset has %d vertices, want 24", super.N())
	}
	if !super.IsConnected() {
		t.Fatal("superset is disconnected")
	}
	// Every snapshot must be a spanning connected subgraph of the
	// superset: drive the model over a topology view and check each
	// phase's active graph stays connected.
	net, err := congest.NewNetwork(super, congest.Config{Topology: model, MaxRounds: 16})
	if err != nil {
		t.Fatal(err)
	}
	_ = net
	for _, marks := range model.on {
		active := 0
		for _, on := range marks {
			if on {
				active++
			}
		}
		if active != 24*3/2 {
			t.Fatalf("snapshot has %d active superset edges, want %d (3-regular on 24)", active, 24*3/2)
		}
	}
}

func TestRotatingRegularDeterministic(t *testing.T) {
	m1, s1, err := NewRotatingRegular(20, 4, 2, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := NewRotatingRegular(20, 4, 2, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed built different supersets")
	}
	if !reflect.DeepEqual(m1.on, m2.on) {
		t.Fatal("same seed built different snapshot masks")
	}
	m3, _, err := NewRotatingRegular(20, 4, 2, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(m1.on, m3.on) {
		t.Fatal("different seeds built identical snapshot masks")
	}
}

func TestRotatingRegularValidation(t *testing.T) {
	if _, _, err := NewRotatingRegular(24, 3, 0, 4, 1); err == nil {
		t.Fatal("zero snapshots accepted")
	}
	if _, _, err := NewRotatingRegular(24, 3, 2, 0, 1); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, _, err := NewRotatingRegular(3, 9, 2, 4, 1); err == nil {
		t.Fatal("impossible degree accepted")
	}
}
